package resilient

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tasterschoice/internal/randutil"
)

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := b.Delay(30); got != 5*time.Second {
		t.Errorf("Delay(30) = %v, want capped 5s", got)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	mk := func() Backoff {
		rng := randutil.NewLocked(randutil.New(99))
		return Backoff{Base: 10 * time.Millisecond, Jitter: 1, Rand: rng.Float64}
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
		if da < 10*time.Millisecond {
			t.Fatalf("jitter reduced the delay: %v", da)
		}
	}
}

func TestBackoffJitterNeverExceedsMax(t *testing.T) {
	rng := randutil.NewLocked(randutil.New(5))
	b := Backoff{Base: 1 * time.Second, Max: 2 * time.Second, Jitter: 1, Rand: rng.Float64}
	for i := 0; i < 20; i++ {
		if got := b.Delay(i); got > 2*time.Second {
			t.Fatalf("Delay(%d) = %v exceeds Max", i, got)
		}
	}
}

func TestRetrierStopsOnSuccess(t *testing.T) {
	calls := 0
	var slept []time.Duration
	r := Retrier{Attempts: 5, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	err := r.Do(func(attempt int) error {
		calls++
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(slept) != 2 || slept[0] != 50*time.Millisecond || slept[1] != 100*time.Millisecond {
		t.Fatalf("sleeps = %v", slept)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	r := Retrier{Attempts: 4, Sleep: func(time.Duration) {}}
	err := r.Do(func(int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestRetrierPermanentShortCircuits(t *testing.T) {
	fatal := errors.New("unknown feed")
	calls := 0
	r := Retrier{Attempts: 10, Sleep: func(time.Duration) {}}
	err := r.Do(func(int) error { calls++; return Permanent(fatal) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent error)", calls)
	}
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want to unwrap to the original", err)
	}
	if !IsPermanent(err) {
		t.Fatal("permanence lost through return")
	}
}

// fakeClock drives a Breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, Now: clk.now}

	// Closed: everything flows; failures below threshold do not trip.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.Failure() // third consecutive failure trips
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed during cooldown")
	}

	// After cooldown: exactly one half-open probe at a time.
	clk.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe fails: re-open, full cooldown again.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open")
	}

	// Next probe succeeds: closed again.
	clk.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused after recovery")
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

// TestBreakerConcurrentHalfOpenProbes storms a just-cooled-down open
// breaker with concurrent Allow callers: exactly one probe wins, the
// losers fail fast, and the state machine neither flaps nor double-
// trips while the probe's outcome is pending.
func TestBreakerConcurrentHalfOpenProbes(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clk := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	b := &Breaker{Threshold: 1, Cooldown: time.Minute, Now: clk}
	b.Failure() // trip
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after trip", b.State())
	}
	mu.Lock()
	now = now.Add(2 * time.Minute) // cooldown elapsed
	mu.Unlock()

	const stormers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := admitted.Load(); got != 1 {
		t.Fatalf("concurrent Allow storm admitted %d probes, want exactly 1", got)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v with a probe outstanding, want half-open", b.State())
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d during the probe storm, want the original 1", got)
	}

	// The winning probe succeeds: the breaker closes and everyone
	// flows again — the losers' denials must not have corrupted it.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success", b.State())
	}
	var refused atomic.Int64
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b.Allow() {
				refused.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := refused.Load(); got != 0 {
		t.Fatalf("closed breaker refused %d callers after recovery", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := &Breaker{Threshold: 3}
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 5; i++ {
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatal("default threshold (5) did not trip")
	}
}
