package lint_test

import (
	"testing"

	"tasterschoice/internal/lint"
	"tasterschoice/internal/lint/linttest"
)

// Each fixture is typechecked under a masquerade import path so the
// classification table treats it as the real package it impersonates.

func TestFloatMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src/floatmaprange", "tasterschoice/internal/report", lint.FloatMapRange)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "tasterschoice/internal/parallel", lint.WallClock)
}

// TestWallClockEdge proves the classification gate: the same calls
// that fail in an engine package are legal in an edge package.
func TestWallClockEdge(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock_edge", "tasterschoice/internal/dnsbl", lint.WallClock)
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, "testdata/src/globalrand", "tasterschoice/internal/mailflow", lint.GlobalRand)
}

func TestNilGuard(t *testing.T) {
	linttest.Run(t, "testdata/src/nilguard", "tasterschoice/internal/obs", lint.NilGuard)
}

func TestCtxBlocking(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxblocking", "tasterschoice/internal/smtpd", lint.CtxBlocking)
}

func TestStringAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/stringalloc", "tasterschoice/internal/mailflow", lint.StringAlloc)
}

// TestStringAllocEdge proves the classification gate: per-iteration
// string building is legal in edge packages, which render wire
// formats.
func TestStringAllocEdge(t *testing.T) {
	linttest.Run(t, "testdata/src/stringalloc_edge", "tasterschoice/internal/dnsbl", lint.StringAlloc)
}

func TestPublishedMut(t *testing.T) {
	linttest.Run(t, "testdata/src/publishedmut", "tasterschoice/internal/dnsblplane", lint.PublishedMut)
}

func TestLockScope(t *testing.T) {
	linttest.Run(t, "testdata/src/lockscope", "tasterschoice/internal/overload", lint.LockScope)
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, "testdata/src/goroleak", "tasterschoice/internal/distsweep", lint.GoroLeak)
}

// TestCrossPackageFacts runs the two-package fixture pair through one
// shared fact store: factdep poses as the edge package feedsync,
// factmain as the engine package dnsblplane importing it. Every want
// in factmain rests on a fact computed in factdep — the wallclock and
// globalrand taint escalations, a Blocking fact under a lock, a
// mutation mask after a publish, and a Tracked fact that keeps a
// cross-package spawn clean.
func TestCrossPackageFacts(t *testing.T) {
	linttest.RunMulti(t,
		[]linttest.Pkg{
			{Dir: "testdata/src/factdep", ImportPath: "tasterschoice/internal/feedsync"},
			{Dir: "testdata/src/factmain", ImportPath: "tasterschoice/internal/dnsblplane"},
		},
		lint.WallClock, lint.GlobalRand, lint.PublishedMut, lint.LockScope, lint.GoroLeak)
}
