package lint_test

import (
	"testing"

	"tasterschoice/internal/lint"
	"tasterschoice/internal/lint/linttest"
)

// Each fixture is typechecked under a masquerade import path so the
// classification table treats it as the real package it impersonates.

func TestFloatMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src/floatmaprange", "tasterschoice/internal/report", lint.FloatMapRange)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "tasterschoice/internal/parallel", lint.WallClock)
}

// TestWallClockEdge proves the classification gate: the same calls
// that fail in an engine package are legal in an edge package.
func TestWallClockEdge(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock_edge", "tasterschoice/internal/dnsbl", lint.WallClock)
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, "testdata/src/globalrand", "tasterschoice/internal/mailflow", lint.GlobalRand)
}

func TestNilGuard(t *testing.T) {
	linttest.Run(t, "testdata/src/nilguard", "tasterschoice/internal/obs", lint.NilGuard)
}

func TestCtxBlocking(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxblocking", "tasterschoice/internal/smtpd", lint.CtxBlocking)
}

func TestStringAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/stringalloc", "tasterschoice/internal/mailflow", lint.StringAlloc)
}

// TestStringAllocEdge proves the classification gate: per-iteration
// string building is legal in edge packages, which render wire
// formats.
func TestStringAllocEdge(t *testing.T) {
	linttest.Run(t, "testdata/src/stringalloc_edge", "tasterschoice/internal/dnsbl", lint.StringAlloc)
}
