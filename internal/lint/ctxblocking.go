package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxBlocking enforces the Context-variant convention on the network
// edge (feedsync, dnsbl, smtpd, distsweep): an exported API that
// blocks — dials,
// accepts, or parks on a channel — must either take a context.Context
// itself or have a sibling that does (Listed/ListedContext,
// Close/Shutdown), so callers can always bound the wait. Only the
// function's own body is inspected (blocking inside a spawned
// goroutine does not block the caller), and select statements are
// treated as cancellable by construction.
var CtxBlocking = &Analyzer{
	Name: "ctxblocking",
	Doc: "exported blocking APIs in feedsync/dnsbl/smtpd/distsweep must take a context.Context " +
		"or offer a <Name>Context (for Close: Shutdown) variant",
	Run: runCtxBlocking,
}

// netDialFuncs are the blocking package-level dialers of net.
var netDialFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true,
	"DialUDP": true, "DialIP": true, "DialUnix": true,
}

func runCtxBlocking(pass *Pass) error {
	if !NeedsCtxContract(pass.Pkg.Path()) {
		return nil
	}

	// Index the package's declared names so sibling lookups see every
	// file: plain function names, and method names per receiver type.
	funcNames := make(map[string]bool)
	methodNames := make(map[string]map[string]bool)
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, file *ast.File) {
		if fd.Recv == nil {
			funcNames[fd.Name.Name] = true
			return
		}
		recv := receiverTypeName(fd)
		if recv == "" {
			return
		}
		if methodNames[recv] == nil {
			methodNames[recv] = make(map[string]bool)
		}
		methodNames[recv][fd.Name.Name] = true
	})

	hasSibling := func(fd *ast.FuncDecl, name string) bool {
		if fd.Recv == nil {
			return funcNames[name]
		}
		return methodNames[receiverTypeName(fd)][name]
	}

	forEachFuncDecl(pass, func(fd *ast.FuncDecl, file *ast.File) {
		if !fd.Name.IsExported() || fd.Body == nil {
			return
		}
		if fd.Recv != nil && !ast.IsExported(receiverTypeName(fd)) {
			return
		}
		// The API convention binds exported source, not test helpers.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			return
		}
		if takesContext(pass.Info, fd) {
			return
		}
		if hasSibling(fd, fd.Name.Name+"Context") ||
			(fd.Name.Name == "Close" && hasSibling(fd, "Shutdown")) {
			return
		}
		blockingCalls(pass, fd.Body, func(pos ast.Node, what string) {
			pass.Report(Diagnostic{
				Pos: pos.Pos(),
				Message: fmt.Sprintf("exported %s blocks on %s but takes no context.Context "+
					"and has no %sContext variant; callers cannot bound the wait",
					fd.Name.Name, what, fd.Name.Name),
			})
		})
	})
	return nil
}

func forEachFuncDecl(pass *Pass, fn func(*ast.FuncDecl, *ast.File)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fn(fd, f)
			}
		}
	}
}

// receiverTypeName returns T for receivers (t T) and (t *T).
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// takesContext reports whether any parameter's type is
// context.Context.
func takesContext(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if t := info.TypeOf(p.Type); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}

// blockingCalls walks a function body reporting each directly blocking
// operation. It does not descend into function literals (their bodies
// run elsewhere) or select statements (cancellable by construction).
func blockingCalls(pass *Pass, body *ast.BlockStmt, report func(ast.Node, string)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit, *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			report(v, "a channel send")
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				report(v, "a channel receive")
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(v, "ranging over a channel")
				}
			}
		case *ast.CallExpr:
			if what := blockingNetCall(pass.Info, v); what != "" {
				report(v, what)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// blockingNetCall identifies net dials and listener accepts.
func blockingNetCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	recv := fn.Type().(*types.Signature).Recv()
	switch {
	case recv == nil && netDialFuncs[name]:
		return "net." + name
	case recv != nil && name == "Dial": // (*net.Dialer).Dial
		return "(net.Dialer).Dial"
	case recv != nil && strings.HasPrefix(name, "Accept"):
		return "Listener." + name
	}
	return ""
}
