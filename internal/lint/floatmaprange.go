package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatMapRange flags floating-point accumulation performed while
// ranging over a map in a deterministic package. Map iteration order
// is randomized per run and float addition is not associative, so
//
//	for _, v := range m { sum += v }
//
// produces a different last ulp on every execution — the exact bug
// class the stats package fixed by summing over sortedKeys(). The
// sorted idiom ranges over a key slice, which this analyzer never
// flags.
var FloatMapRange = &Analyzer{
	Name: "floatmaprange",
	Doc: "flag float accumulation in map-iteration order in deterministic packages; " +
		"sum over sorted keys instead so output is bit-identical across runs",
	Run: runFloatMapRange,
}

func runFloatMapRange(pass *Pass) error {
	if Classify(pass.Pkg.Path()) != ClassDeterministic {
		return nil
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.Info.TypeOf(rs.X)) {
				return true
			}
			ast.Inspect(rs.Body, func(inner ast.Node) bool {
				as, ok := inner.(*ast.AssignStmt)
				if !ok {
					return true
				}
				lhs, ok := floatAccumTarget(pass.Info, as)
				if !ok || reported[as.Pos()] {
					return true
				}
				// A target declared inside the range body is a fresh
				// per-iteration value; only accumulators that outlive
				// the map iteration carry order-dependent rounding.
				if obj := rootObject(pass.Info, lhs); obj == nil || !obj.Pos().IsValid() ||
					(obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
					return true
				}
				reported[as.Pos()] = true
				pass.Report(Diagnostic{
					Pos: as.Pos(),
					Message: fmt.Sprintf(
						"float accumulation into %s in map-iteration order; "+
							"sum over sorted keys so the result is bit-identical across runs",
						types.ExprString(lhs)),
				})
				return true
			})
			return true
		})
	}
	return nil
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// floatAccumTarget returns the accumulated lvalue when the assignment
// is a floating-point accumulation: `x += e`, `x -= e`, or the spelled
// out `x = x + e` / `x = e + x`.
func floatAccumTarget(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := as.Lhs[0]
	if !isFloat(info.TypeOf(lhs)) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return nil, false
		}
		ls := types.ExprString(lhs)
		if types.ExprString(be.X) == ls || (be.Op == token.ADD && types.ExprString(be.Y) == ls) {
			return lhs, true
		}
	}
	return nil, false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObject resolves the base identifier of an lvalue (x, x.F,
// x.F[i], *x ...) to its declaring object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
