package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// The modular fact store: per-function facts computed once per package
// and propagated to dependents. In standalone mode one store lives for
// the whole run and packages are analyzed in dependency order, so a
// dependent's lookup hits the facts its dependency just computed. In
// `go vet -vettool` mode each package unit runs in its own process:
// facts serialize into the unit's .vetx output file and deserialize
// from the dependency .vetx files cmd/go hands the next unit — the
// same modular-propagation path x/tools analysis facts ride.

// FactSet is a bitmask of per-function facts.
type FactSet uint8

const (
	// FactWallClock: the function transitively reaches an unsanctioned
	// time.Now/Since/Sleep (a use not cleansed by //lint:allow
	// wallclock at its site).
	FactWallClock FactSet = 1 << iota
	// FactGlobalRand: the function transitively reaches the
	// process-global math/rand state.
	FactGlobalRand
	// FactBlocking: the function can block its caller — a channel
	// send/receive outside select, ranging over a channel, a
	// WaitGroup.Wait, net dial/accept/conn I/O — directly or through a
	// plain call chain.
	FactBlocking
	// FactTracked: the function participates in structured goroutine
	// lifecycle — it observes a context.Context, calls
	// (*sync.WaitGroup).Done/Wait, or registers with
	// internal/lifecycle. go statements spawning a Tracked function
	// satisfy the goroleak contract.
	FactTracked
)

// Has reports whether all bits in q are set.
func (s FactSet) Has(q FactSet) bool { return s&q == q }

// String renders the set for diagnostics and the -facts debug dump.
func (s FactSet) String() string {
	var parts []string
	if s.Has(FactWallClock) {
		parts = append(parts, "wallclock")
	}
	if s.Has(FactGlobalRand) {
		parts = append(parts, "globalrand")
	}
	if s.Has(FactBlocking) {
		parts = append(parts, "blocking")
	}
	if s.Has(FactTracked) {
		parts = append(parts, "tracked")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// FuncFacts is everything the store knows about one function: the
// taint bits plus a parameter-mutation mask (bit i set: the function
// writes through its i-th parameter, directly or by passing it on to
// another mutator — the interprocedural half of publishedmut).
type FuncFacts struct {
	Set FactSet
	// MutMask bit i (i < 16) is set when parameter i's pointee may be
	// written (field store, map/slice element store) by the function.
	MutMask uint16
}

// FactStore holds computed facts for lookup by dependent packages.
// Same-universe lookups (intra-package, multi-fixture tests) resolve
// by object identity; cross-universe lookups (standalone dep order,
// vetx deserialization) resolve by canonical package path + object
// key.
type FactStore struct {
	funcs    map[*types.Func]FuncFacts
	imported map[string]map[string]FuncFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		funcs:    make(map[*types.Func]FuncFacts),
		imported: make(map[string]map[string]FuncFacts),
	}
}

// ObjectKey names a function inside its package: "F" for package-level
// functions, "T.M" for methods (pointerness stripped — a method set
// has unique names either way).
func ObjectKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// put records facts for a function checked in this process.
func (s *FactStore) put(fn *types.Func, f FuncFacts) {
	s.funcs[fn] = f
	if fn.Pkg() == nil {
		return
	}
	path := canonicalPath(fn.Pkg().Path())
	m := s.imported[path]
	if m == nil {
		m = make(map[string]FuncFacts)
		s.imported[path] = m
	}
	m[ObjectKey(fn)] = f
}

// Lookup returns the known facts for fn (zero facts when unknown —
// missing facts degrade to "clean", never to a false finding).
func (s *FactStore) Lookup(fn *types.Func) FuncFacts {
	if fn == nil {
		return FuncFacts{}
	}
	if f, ok := s.funcs[fn]; ok {
		return f
	}
	if fn.Pkg() == nil {
		return FuncFacts{}
	}
	return s.imported[canonicalPath(fn.Pkg().Path())][ObjectKey(fn)]
}

// ExportPackage serializes one package's facts: a versioned,
// line-oriented, sorted (hence byte-deterministic) listing —
//
//	tastervetfacts/v1
//	<objectKey>\t<factbits>\t<mutmask>
//
// Only functions with any information are listed; absence means clean.
func (s *FactStore) ExportPackage(pkgPath string) []byte {
	m := s.imported[canonicalPath(pkgPath)]
	keys := make([]string, 0, len(m))
	for k, f := range m {
		if f.Set == 0 && f.MutMask == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString(factsMagic + "\n")
	for _, k := range keys {
		f := m[k]
		fmt.Fprintf(&buf, "%s\t%d\t%d\n", k, uint8(f.Set), f.MutMask)
	}
	return buf.Bytes()
}

// factsMagic heads every serialized facts file; an empty or
// foreign-format file (the pre-facts tastervet wrote zero bytes)
// deserializes as "no facts".
const factsMagic = "tastervetfacts/v1"

// ImportPackage merges a serialized facts file for pkgPath into the
// store. Unknown formats are ignored, not errors: a stale vetx from an
// older tool build simply contributes nothing.
func (s *FactStore) ImportPackage(pkgPath string, data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || sc.Text() != factsMagic {
		return nil
	}
	path := canonicalPath(pkgPath)
	m := s.imported[path]
	if m == nil {
		m = make(map[string]FuncFacts)
		s.imported[path] = m
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return fmt.Errorf("facts for %s: malformed line %q", pkgPath, line)
		}
		bits, err := strconv.ParseUint(parts[1], 10, 8)
		if err != nil {
			return fmt.Errorf("facts for %s: bad bits in %q: %v", pkgPath, line, err)
		}
		mut, err := strconv.ParseUint(parts[2], 10, 16)
		if err != nil {
			return fmt.Errorf("facts for %s: bad mutmask in %q: %v", pkgPath, line, err)
		}
		m[parts[0]] = FuncFacts{Set: FactSet(bits), MutMask: uint16(mut)}
	}
	return sc.Err()
}

// PackagePaths returns every package path with imported or computed
// facts, sorted.
func (s *FactStore) PackagePaths() []string {
	out := make([]string, 0, len(s.imported))
	for p := range s.imported {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
