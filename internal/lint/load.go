package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The standalone loader: `go list -export` enumerates packages and
// compiles export data for every dependency (stdlib included — the
// module itself has none), then each target package is parsed and
// type-checked from source with the stock gc importer reading that
// export data. This is what lets tastervet exist in a dependency-free
// module: no golang.org/x/tools, just the go command and go/types.

// LoadedPackage is one package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors collects type-checking problems. Analysis still runs
	// on the partial information, but callers should surface these:
	// an unresolved identifier is an unanalyzed identifier.
	TypeErrors []error
	// FactsOnly marks a module-internal dependency loaded solely so its
	// interprocedural facts feed the requested targets (a narrow
	// pattern like ./internal/dnsblplane still sees through calls into
	// feedsync). FactsOnly packages are not reported on.
	FactsOnly bool
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	ForTest    string
	Standard   bool
	Incomplete bool
}

// Load lists patterns in dir and returns the module's internal
// packages parsed and type-checked. With includeTests, _test.go files
// and external _test packages are analyzed too (the chaos CI step uses
// this with -tags chaos so even fault-injection helpers obey the
// contracts).
func Load(dir string, patterns []string, tags string, includeTests bool) ([]*LoadedPackage, error) {
	args := []string{"list", "-e", "-json", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	entries, decodeErr := decodeList(out)
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	if decodeErr != nil {
		return nil, decodeErr
	}

	exports := make(map[string]string)
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	// go list -deps emits dependencies before dependents, so walking
	// the entries in order and threading one fact store through them
	// guarantees a package's facts exist before its importers ask.
	type target struct {
		entry     *listEntry
		factsOnly bool
	}
	var targets []target
	for _, e := range entries {
		switch {
		case isAnalysisTarget(e, includeTests, entries):
			targets = append(targets, target{e, false})
		case isFactSource(e):
			targets = append(targets, target{e, true})
		}
	}

	var pkgs []*LoadedPackage
	for _, t := range targets {
		p, err := typecheck(t.entry, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.entry.ImportPath, err)
		}
		p.FactsOnly = t.factsOnly
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// isFactSource picks dependency-only module-internal packages: they
// are loaded and fact-analyzed (so targets see through calls into
// them) but produce no diagnostics of their own.
func isFactSource(e *listEntry) bool {
	return e.DepOnly && !e.Standard && len(e.GoFiles) > 0 &&
		e.ForTest == "" && !strings.HasSuffix(e.ImportPath, ".test") &&
		strings.HasPrefix(canonicalPath(e.ImportPath), modulePrefix+"internal/")
}

func decodeList(r io.Reader) ([]*listEntry, error) {
	dec := json.NewDecoder(r)
	var entries []*listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			return entries, nil
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		entries = append(entries, &e)
	}
}

// isAnalysisTarget picks which list entries to analyze: the module's
// internal packages (everything else classifies Exempt anyway), with
// test variants replacing their plain package when tests are in scope
// so files are analyzed exactly once.
func isAnalysisTarget(e *listEntry, includeTests bool, all []*listEntry) bool {
	if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
		return false
	}
	if !strings.HasPrefix(canonicalPath(e.ImportPath), modulePrefix+"internal/") {
		return false
	}
	if strings.HasSuffix(e.ImportPath, ".test") {
		return false // generated test main
	}
	if !includeTests {
		return e.ForTest == ""
	}
	if e.ForTest == "" {
		// Skip the plain package when its test-augmented variant is in
		// the listing; the variant carries a superset of the files.
		for _, other := range all {
			if other.ForTest == e.ImportPath && !strings.Contains(other.ImportPath, "_test [") {
				return false
			}
		}
	}
	return true
}

// typecheck parses the entry's files and type-checks them against the
// export data gathered for the whole dependency graph.
func typecheck(e *listEntry, exports map[string]string) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range e.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		// Inside a test unit, a dependency under test resolves to its
		// test-augmented build (this is how an external _test package
		// sees identifiers exported via export_test.go).
		if e.ForTest != "" {
			if p, ok := exports[path+" ["+e.ForTest+".test]"]; ok {
				return os.Open(p)
			}
		}
		p, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := newInfo()
	pkg, _ := conf.Check(e.ImportPath, fset, files, info)
	if pkg == nil {
		return nil, fmt.Errorf("type-checking produced no package (%d errors)", len(typeErrs))
	}
	return &LoadedPackage{
		ImportPath: e.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
