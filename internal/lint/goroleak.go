package lint

import (
	"fmt"
	"go/ast"
)

// GoroLeak makes shutdown-drain guarantees structural: every go
// statement in an engine package must spawn a goroutine whose exit
// somebody can wait on. A goroutine is "tracked" when the spawned
// function observes a context.Context (threaded parameter or captured
// variable), participates in a sync.WaitGroup (Done/Wait), or
// registers with internal/lifecycle — resolved transitively through
// the call graph and the fact store, so a method whose wg.Done hides
// two helpers down still counts. Anything else is an orphan: it
// outlives Shutdown, races the test harness, and leaks under churn.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement in engine packages must spawn a ctx-observing, WaitGroup-registered " +
		"or lifecycle-managed function; orphan goroutines break shutdown-drain guarantees",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if Classify(pass.Pkg.Path()) < ClassEngine {
		return nil
	}
	if pass.Inter == nil {
		return nil
	}
	for _, node := range pass.Inter.Graph.Nodes() {
		for _, e := range node.Edges {
			if e.Kind != EdgeGo {
				continue
			}
			gs, ok := e.Pos.(*ast.GoStmt)
			if !ok {
				continue
			}
			if goTracked(pass, e, gs) {
				continue
			}
			pass.Report(Diagnostic{
				Pos: gs.Pos(),
				Message: fmt.Sprintf("go statement spawns an untracked goroutine%s; thread a ctx, register it "+
					"with a WaitGroup, or run it under lifecycle so shutdown can drain it", spawnee(e)),
			})
		}
	}
	// Dynamic spawns — go fn() through a function-typed variable — have
	// no edge in the graph; scan for them directly.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
				return true
			}
			if ResolveCallee(pass.Info, gs.Call.Fun) != nil {
				return true // resolved: the edge loop above handled it
			}
			if callPassesContext(pass, gs.Call) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: gs.Pos(),
				Message: "go statement spawns a dynamic callee the analyzer cannot prove tracked; " +
					"thread a ctx argument or annotate with //lint:allow goroleak -- reason",
			})
			return true
		})
	}
	return nil
}

// goTracked decides whether one resolved or literal spawn satisfies
// the lifecycle contract.
func goTracked(pass *Pass, e Edge, gs *ast.GoStmt) bool {
	// The spawned function's own transitive facts.
	var facts FuncFacts
	if e.Lit != nil {
		facts = pass.Inter.FactsForLit(e.Lit)
	} else {
		facts = pass.Inter.FactsFor(e.Callee)
	}
	if facts.Set.Has(FactTracked) {
		return true
	}
	// A ctx handed in at the spawn site tracks it even when the callee
	// resolution failed to see inside (e.g. an external package's
	// function taking ctx).
	return callPassesContext(pass, gs.Call)
}

// callPassesContext reports whether any argument of the call has type
// context.Context.
func callPassesContext(pass *Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t := pass.Info.TypeOf(a); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}

// spawnee names the spawned function for the diagnostic.
func spawnee(e Edge) string {
	if e.Callee != nil {
		return " (" + ObjectKey(e.Callee) + ")"
	}
	return ""
}
