package lint

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		path string
		want Class
	}{
		// The four deterministic packages.
		{"tasterschoice/internal/analysis", ClassDeterministic},
		{"tasterschoice/internal/stats", ClassDeterministic},
		{"tasterschoice/internal/mailflow", ClassDeterministic},
		{"tasterschoice/internal/report", ClassDeterministic},

		// The network boundary.
		{"tasterschoice/internal/dnsbl", ClassEdge},
		{"tasterschoice/internal/feedsync", ClassEdge},
		{"tasterschoice/internal/smtpd", ClassEdge},
		{"tasterschoice/internal/lifecycle", ClassEdge},

		// distsweep is engine-strict despite speaking a wire protocol:
		// its whole contract is deterministic, byte-identical output.
		{"tasterschoice/internal/distsweep", ClassEngine},

		// overload is engine-strict despite serving edge callers: its
		// shed decisions must replay bit-for-bit from (seed, clock).
		{"tasterschoice/internal/overload", ClassEngine},

		// dnsblplane serves sockets but keeps the engine contract: an
		// answer is a pure function of (query bytes, listing state).
		{"tasterschoice/internal/dnsblplane", ClassEngine},

		// Unlisted internal packages default to the strict engine class.
		{"tasterschoice/internal/parallel", ClassEngine},
		{"tasterschoice/internal/obs", ClassEngine},
		{"tasterschoice/internal/somefuturepkg", ClassEngine},

		// Subpackages inherit their nearest listed ancestor.
		{"tasterschoice/internal/stats/histogram", ClassDeterministic},
		{"tasterschoice/internal/smtpd/wire", ClassEdge},

		// go test package variants classify like the package under test.
		{"tasterschoice/internal/stats [tasterschoice/internal/stats.test]", ClassDeterministic},
		{"tasterschoice/internal/stats_test", ClassDeterministic},
		{"tasterschoice/internal/smtpd_test [tasterschoice/internal/smtpd.test]", ClassEdge},

		// Everything outside internal/ is exempt.
		{"tasterschoice/cmd/tastervet", ClassExempt},
		{"fmt", ClassExempt},
		{"example.com/other/internal/stats", ClassExempt},
	}
	for _, tc := range cases {
		if got := Classify(tc.path); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	// The analyzers gate on comparisons, so the strictness order is
	// load-bearing: exempt < edge < engine < deterministic.
	if !(ClassExempt < ClassEdge && ClassEdge < ClassEngine && ClassEngine < ClassDeterministic) {
		t.Fatalf("class ordering broken: exempt=%d edge=%d engine=%d deterministic=%d",
			ClassExempt, ClassEdge, ClassEngine, ClassDeterministic)
	}
}

func TestNeedsCtxContract(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"tasterschoice/internal/distsweep", true},
		{"tasterschoice/internal/dnsbl", true},
		{"tasterschoice/internal/dnsblplane", true},
		{"tasterschoice/internal/feedsync", true},
		{"tasterschoice/internal/smtpd", true},
		{"tasterschoice/internal/overload", true},
		{"tasterschoice/internal/overload_test", true},
		{"tasterschoice/internal/smtpd/wire", true}, // subpackages inherit
		{"tasterschoice/internal/smtpd_test", true},
		{"tasterschoice/internal/mta", false}, // edge, but not under the ctx contract
		{"tasterschoice/internal/stats", false},
		{"tasterschoice/cmd/tastervet", false},
		{"fmt", false},
	}
	for _, tc := range cases {
		if got := NeedsCtxContract(tc.path); got != tc.want {
			t.Errorf("NeedsCtxContract(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestNeedsNilGuard(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"tasterschoice/internal/obs", true},
		{"tasterschoice/internal/obs [tasterschoice/internal/obs.test]", true},
		{"tasterschoice/internal/stats", false},
		{"fmt", false},
	}
	for _, tc := range cases {
		if got := NeedsNilGuard(tc.path); got != tc.want {
			t.Errorf("NeedsNilGuard(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestNeedsStringAlloc(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		// Dataset-build hot paths.
		{"tasterschoice/internal/feeds", true},
		{"tasterschoice/internal/symtab", true},
		// The query plane's read loop answers once per datagram: string
		// building per query would dominate the profile.
		{"tasterschoice/internal/dnsblplane", true},
		{"tasterschoice/internal/dnsblplane_test", true},
		// Edge and reporting packages build strings as their job.
		{"tasterschoice/internal/dnsbl", false},
		{"tasterschoice/internal/report", false},
		{"tasterschoice/internal/benchref", false},
		{"fmt", false},
	}
	for _, tc := range cases {
		if got := NeedsStringAlloc(tc.path); got != tc.want {
			t.Errorf("NeedsStringAlloc(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestCanonicalPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tasterschoice/internal/stats", "tasterschoice/internal/stats"},
		{"tasterschoice/internal/stats [tasterschoice/internal/stats.test]", "tasterschoice/internal/stats"},
		{"tasterschoice/internal/stats_test", "tasterschoice/internal/stats"},
		{"tasterschoice/internal/stats_test [tasterschoice/internal/stats.test]", "tasterschoice/internal/stats"},
	}
	for _, tc := range cases {
		if got := canonicalPath(tc.in); got != tc.want {
			t.Errorf("canonicalPath(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
