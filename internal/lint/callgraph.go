package lint

import (
	"go/ast"
	"go/types"
)

// The per-package call graph: who calls (or spawns, defers, or merely
// references) whom, over the typed AST. It is the substrate the fact
// store and the interprocedural analyzers (publishedmut, lockscope,
// goroleak) and the taint escalation of wallclock/globalrand all walk.
//
// Nodes are function bodies: declared functions and methods
// (*types.Func) plus anonymous function literals (keyed by their
// *ast.FuncLit). Edges are classified by how the callee runs relative
// to the caller, because the analyses care:
//
//   - EdgeCall: a plain call — the callee's blocking behaviour is the
//     caller's blocking behaviour.
//   - EdgeGo: a go statement — the callee runs elsewhere; it inherits
//     taint (a spawned time.Now still breaks replay) but not blocking.
//   - EdgeDefer: a deferred call — runs at return, outside any
//     critical section the body scoped; taints, does not block the
//     body.
//   - EdgeRef: the function is referenced as a value (method value,
//     function-typed field, argument) without being called here. It
//     may run anywhere later, so taint flows; blocking does not.
type EdgeKind int

const (
	EdgeCall EdgeKind = iota
	EdgeGo
	EdgeDefer
	EdgeRef
)

// Edge is one outgoing reference from a caller node.
type Edge struct {
	Kind EdgeKind
	// Callee is the resolved target for declared functions and
	// methods; nil when the target is a function literal (then Lit is
	// set) or unresolvable (dynamic call through a variable or
	// interface — no edge is recorded for those).
	Callee *types.Func
	// Lit is the target function literal, for directly invoked or
	// referenced literals.
	Lit *ast.FuncLit
	// Pos is the call or reference site.
	Pos ast.Node
}

// CallNode is one function body and its outgoing edges.
type CallNode struct {
	// Fn is the declared function, nil for literals.
	Fn *types.Func
	// Lit is the literal, nil for declared functions.
	Lit *ast.FuncLit
	// Decl is the declaration carrying the body (nil for literals).
	Decl *ast.FuncDecl
	// Body is the function body (may be nil for bodyless decls).
	Body *ast.BlockStmt
	// Edges are the outgoing references in source order.
	Edges []Edge
}

// CallGraph is the per-package graph.
type CallGraph struct {
	// Funcs maps declared functions and methods to their nodes.
	Funcs map[*types.Func]*CallNode
	// Lits maps function literals to their nodes.
	Lits map[*ast.FuncLit]*CallNode
	// nodes holds every node in deterministic (source) order.
	nodes []*CallNode
}

// Nodes returns every node in source order.
func (g *CallGraph) Nodes() []*CallNode { return g.nodes }

// NodeFor returns the node of a declared function, or nil.
func (g *CallGraph) NodeFor(fn *types.Func) *CallNode { return g.Funcs[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CallNode { return g.Lits[lit] }

// BuildCallGraph constructs the package's call graph from the typed
// syntax trees.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		Funcs: make(map[*types.Func]*CallNode),
		Lits:  make(map[*ast.FuncLit]*CallNode),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &CallNode{Fn: fn, Decl: fd, Body: fd.Body}
			g.Funcs[fn] = node
			g.nodes = append(g.nodes, node)
			if fd.Body != nil {
				g.scanBody(node, fd.Body, info)
			}
		}
	}
	return g
}

// scanBody records node's outgoing edges, creating child nodes for
// every function literal it encounters (literals nest; each gets its
// own node and edge scan over its own body only).
func (g *CallGraph) scanBody(node *CallNode, body *ast.BlockStmt, info *types.Info) {
	// calleeOf resolves the function a call expression invokes.
	var walk func(n ast.Node) bool
	record := func(kind EdgeKind, target ast.Expr, site ast.Node) bool {
		switch t := ast.Unparen(target).(type) {
		case *ast.FuncLit:
			child := g.litNode(t, info)
			node.Edges = append(node.Edges, Edge{Kind: kind, Lit: t, Pos: site})
			_ = child
			return true
		default:
			if fn := ResolveCallee(info, target); fn != nil {
				node.Edges = append(node.Edges, Edge{Kind: kind, Callee: fn, Pos: site})
				return true
			}
		}
		return false
	}
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A literal reached here is a value reference (invoked
			// literals are handled at their CallExpr below, but the
			// ref edge is harmless and keeps taint conservative).
			g.litNode(v, info)
			node.Edges = append(node.Edges, Edge{Kind: EdgeRef, Lit: v, Pos: v})
			return false
		case *ast.GoStmt:
			record(EdgeGo, v.Call.Fun, v)
			// Arguments (and a method receiver expression) are
			// evaluated in the caller; walk them, but not the spawned
			// function expression itself.
			walkReceiver(v.Call.Fun, walk)
			for _, a := range v.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.DeferStmt:
			record(EdgeDefer, v.Call.Fun, v)
			walkReceiver(v.Call.Fun, walk)
			for _, a := range v.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.CallExpr:
			if record(EdgeCall, v.Fun, v) {
				// The receiver expression of a resolved method call
				// may itself contain calls: f().M() must not lose the
				// edge to f.
				walkReceiver(v.Fun, walk)
				for _, a := range v.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			return true
		case *ast.Ident:
			// A bare reference to a declared function used as a value
			// (assigned, passed, stored in a field): a ref edge.
			if fn, ok := info.Uses[v].(*types.Func); ok {
				node.Edges = append(node.Edges, Edge{Kind: EdgeRef, Callee: fn, Pos: v})
			}
			return true
		}
		return true
	}
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
}

// walkReceiver walks the base expression of a selector call target
// (the receiver, or a package qualifier — a bare Ident contributes
// nothing) so calls nested inside it keep their edges.
func walkReceiver(fun ast.Expr, walk func(ast.Node) bool) {
	if sel, ok := ast.Unparen(fun).(*ast.SelectorExpr); ok {
		ast.Inspect(sel.X, walk)
	}
}

// litNode returns (creating on first sight) the node for a literal and
// scans its body.
func (g *CallGraph) litNode(lit *ast.FuncLit, info *types.Info) *CallNode {
	if n, ok := g.Lits[lit]; ok {
		return n
	}
	n := &CallNode{Lit: lit, Body: lit.Body}
	g.Lits[lit] = n
	g.nodes = append(g.nodes, n)
	if lit.Body != nil {
		g.scanBody(n, lit.Body, info)
	}
	return n
}

// ResolveCallee resolves the *types.Func a call-or-reference target
// expression denotes: package-level functions (f, pkg.F), methods
// (x.M, including method values), and generic instantiations. Dynamic
// targets — function-typed variables, interface methods — resolve to
// nil.
func ResolveCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch t := ast.Unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[t].(*types.Func)
		return origin(fn)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[t]; ok {
			// Function-typed fields (sel.Obj is a *types.Var) and
			// interface methods have no analyzable body; resolve only
			// concrete methods.
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if rt := recvType(fn); rt != nil && types.IsInterface(rt) {
				return nil
			}
			return origin(fn)
		}
		// Qualified identifier: pkg.F.
		fn, _ := info.Uses[t.Sel].(*types.Func)
		return origin(fn)
	case *ast.IndexExpr:
		return ResolveCallee(info, t.X) // generic instantiation f[T]
	case *ast.IndexListExpr:
		return ResolveCallee(info, t.X)
	}
	return nil
}

// origin maps a generic instantiation back to its declared function so
// facts attach to the declaration.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// recvType returns the receiver's type, nil for plain functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
