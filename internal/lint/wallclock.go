package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// WallClock forbids direct wall-clock reads in engine and
// deterministic packages. Simulation code takes time from
// internal/simclock (or an injected func() time.Time); a stray
// time.Now would make output depend on host scheduling. The few
// legitimate uses — measuring real latency for an observability
// histogram, the default branch of an injectable clock — carry a
// //lint:allow wallclock directive stating exactly that.
//
// References are flagged, not just calls: `sleep = time.Sleep` smuggles
// the wall clock through a variable just as effectively.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Sleep in engine packages; " +
		"use the simclock seam (or annotate the measurement path with //lint:allow wallclock -- reason)",
	Run: runWallClock,
}

// wallClockFuncs are the banned package-level functions of time.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
}

func runWallClock(pass *Pass) error {
	if Classify(pass.Pkg.Path()) < ClassEngine {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !wallClockFuncs[id.Name] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			pass.Report(Diagnostic{
				Pos: id.Pos(),
				Message: fmt.Sprintf("time.%s in %s package %s: engine code must take time from the simclock seam, "+
					"not the wall clock", id.Name, Classify(pass.Pkg.Path()), pass.Pkg.Name()),
			})
			return true
		})
	}
	// Interprocedural escalation: a helper in another internal package
	// that transitively reads the wall clock (legally, if it sits on
	// the edge tier) taints every engine call site that reaches it.
	reportEscalations(pass, FactWallClock, func(fn *types.Func) string {
		return fmt.Sprintf("%s.%s transitively reads the wall clock (time.Now/Since/Sleep); "+
			"%s code must take time through the simclock seam or annotate the measurement path",
			fn.Pkg().Name(), ObjectKey(fn), Classify(pass.Pkg.Path()))
	})
	return nil
}
