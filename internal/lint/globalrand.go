package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GlobalRand forbids the process-global math/rand state anywhere in
// the module's internal packages. The global generator is shared,
// lock-contended and seeded once per process, so any draw from it is
// ordering-dependent under concurrency — the replay engine's
// per-campaign/per-domain streams come from internal/randutil instead.
// Constructing an explicit generator (rand.New, rand.NewSource, the
// v2 PCG/ChaCha8 sources) stays legal: the ban is on hidden shared
// state, not on the package.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid the global math/rand state (rand.Seed, rand.Intn, ...); " +
		"draw from a randutil per-stream RNG or an explicit rand.New generator",
	Run: runGlobalRand,
}

// globalRandConstructors are the package-level functions of math/rand
// and math/rand/v2 that build explicit generators rather than touching
// shared state.
var globalRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) error {
	if Classify(pass.Pkg.Path()) < ClassEdge {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc || fn.Type().(*types.Signature).Recv() != nil {
				return true // types, methods on *rand.Rand, etc.
			}
			if globalRandConstructors[id.Name] {
				return true
			}
			pass.Report(Diagnostic{
				Pos: id.Pos(),
				Message: fmt.Sprintf("%s.%s uses the process-global RNG; "+
					"use a randutil per-stream RNG (or an explicit rand.New generator) "+
					"so draws replay deterministically", path, id.Name),
			})
			return true
		})
	}
	// Interprocedural escalation: helpers in other internal packages
	// that transitively consume the process-global RNG taint their
	// call sites here.
	reportEscalations(pass, FactGlobalRand, func(fn *types.Func) string {
		return fmt.Sprintf("%s.%s transitively draws from the process-global math/rand state; "+
			"thread a randutil per-stream RNG through instead", fn.Pkg().Name(), ObjectKey(fn))
	})
	return nil
}
