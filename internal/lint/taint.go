package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The transitive-taint engine. Leaf facts are read straight off each
// function body (an unsanctioned time.Now, a channel receive, a
// wg.Done); the fixpoint then folds callee facts into callers over the
// package call graph, consulting the fact store for callees that live
// in already-analyzed packages. The result — one Inter per package —
// is what lets wallclock and globalrand see through helper
// indirection, lockscope see a blocking helper called under a mutex,
// and goroleak see that a spawned method defers wg.Done three calls
// down.

// Inter carries one package's interprocedural results into analyzers.
type Inter struct {
	// Graph is the package call graph.
	Graph *CallGraph
	// Store resolves facts for functions of other packages.
	Store *FactStore
	// facts holds this package's per-node results (declared funcs and
	// literals both).
	facts map[*CallNode]FuncFacts
}

// FactsFor returns the computed facts for a declared function —
// this package's if fn is local, the store's otherwise.
func (in *Inter) FactsFor(fn *types.Func) FuncFacts {
	if fn == nil {
		return FuncFacts{}
	}
	if node := in.Graph.NodeFor(fn); node != nil {
		return in.facts[node]
	}
	return in.Store.Lookup(fn)
}

// FactsForLit returns the facts of a function literal in this package.
func (in *Inter) FactsForLit(lit *ast.FuncLit) FuncFacts {
	if node := in.Graph.LitNode(lit); node != nil {
		return in.facts[node]
	}
	return FuncFacts{}
}

// ComputeInter builds the call graph, seeds leaf facts, runs the
// propagation fixpoint, and records the package's facts in the store
// for downstream packages.
func ComputeInter(pass *Pass, allows AllowSet, store *FactStore) *Inter {
	g := BuildCallGraph(pass.Files, pass.Info)
	in := &Inter{Graph: g, Store: store, facts: make(map[*CallNode]FuncFacts)}

	// Leaf pass: per-body facts with no call edges considered.
	for _, node := range g.Nodes() {
		in.facts[node] = leafFacts(pass, node, allows)
	}

	// Fixpoint: fold callee facts into callers until stable. Taint
	// bits flow over every edge kind (a spawned or deferred or merely
	// stored tainted function still taints the world the caller
	// builds); Blocking flows over plain calls only (a go statement
	// does not block its spawner, a deferred call blocks after the
	// body); Tracked flows over call edges so a spawned method may
	// delegate its wg.Done to a helper.
	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes() {
			f := in.facts[node]
			for _, e := range node.Edges {
				var cf FuncFacts
				if e.Lit != nil {
					cf = in.facts[g.LitNode(e.Lit)]
				} else if local := g.NodeFor(e.Callee); local != nil {
					cf = in.facts[local]
				} else {
					cf = in.Store.Lookup(e.Callee)
				}
				add := cf.Set & (FactWallClock | FactGlobalRand)
				if add != 0 {
					// An allow at the call site cleanses the chain,
					// exactly as it would cleanse a direct use: the
					// annotation vouches for everything behind it.
					p := pass.Fset.Position(e.Pos.Pos())
					if add.Has(FactWallClock) && allows.Suppresses(p, WallClock.Name) {
						add &^= FactWallClock
					}
					if add.Has(FactGlobalRand) && allows.Suppresses(p, GlobalRand.Name) {
						add &^= FactGlobalRand
					}
				}
				if e.Kind == EdgeCall {
					add |= cf.Set & (FactBlocking | FactTracked)
				}
				if f.Set|add != f.Set {
					f.Set |= add
					changed = true
				}
			}
			in.facts[node] = f
		}
	}

	// Parameter-mutation masks: direct writes through parameters, then
	// one more fixpoint for arguments forwarded to mutating callees.
	computeMutMasks(pass, in)

	// Publish this package's declared-function facts for dependents.
	for fn, node := range g.Funcs {
		store.put(fn, in.facts[node])
	}
	return in
}

// leafFacts reads the directly visible facts off one body.
func leafFacts(pass *Pass, node *CallNode, allows AllowSet) FuncFacts {
	var f FuncFacts
	if node.Body == nil {
		return f
	}
	// Params that are context.Context make the function Tracked.
	var ft *ast.FuncType
	if node.Decl != nil {
		ft = node.Decl.Type
	} else if node.Lit != nil {
		ft = node.Lit.Type
	}
	if ft != nil && ft.Params != nil {
		for _, p := range ft.Params.List {
			if t := pass.Info.TypeOf(p.Type); t != nil && t.String() == "context.Context" {
				f.Set |= FactTracked
			}
		}
	}

	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // its own node owns its facts
		case *ast.SelectStmt:
			// A select is cancellable by construction for Blocking
			// purposes: its comm clauses contribute every fact EXCEPT
			// Blocking (so `case <-ctx.Done():` still marks the
			// function Tracked). The case bodies run unguarded and
			// contribute everything.
			for _, cl := range v.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					var comm FuncFacts
					ast.Inspect(cc.Comm, func(n ast.Node) bool {
						leafInspect(pass, n, allows, &comm)
						_, isLit := n.(*ast.FuncLit)
						return !isLit
					})
					f.Set |= comm.Set &^ FactBlocking
					f.MutMask |= comm.MutMask
				}
				for _, s := range cc.Body {
					ast.Inspect(s, func(n ast.Node) bool {
						leafInspect(pass, n, allows, &f)
						_, isLit := n.(*ast.FuncLit)
						return !isLit
					})
				}
			}
			return false
		default:
			leafInspect(pass, n, allows, &f)
		}
		return true
	})
	return f
}

// leafInspect folds one node's contribution into f.
func leafInspect(pass *Pass, n ast.Node, allows AllowSet, f *FuncFacts) {
	switch v := n.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[v]
		if obj == nil {
			return
		}
		// context.Context flowing through the body (captured from an
		// enclosing scope, stored in a struct) tracks the goroutine.
		if vr, ok := obj.(*types.Var); ok && vr.Type() != nil && vr.Type().String() == "context.Context" {
			f.Set |= FactTracked
		}
		pkg := obj.Pkg()
		if pkg == nil {
			return
		}
		switch pkg.Path() {
		case "time":
			if wallClockFuncs[v.Name] && !allows.Suppresses(pass.Fset.Position(v.Pos()), WallClock.Name) {
				f.Set |= FactWallClock
			}
		case "math/rand", "math/rand/v2":
			fn, isFunc := obj.(*types.Func)
			if isFunc && fn.Type().(*types.Signature).Recv() == nil &&
				!globalRandConstructors[v.Name] &&
				!allows.Suppresses(pass.Fset.Position(v.Pos()), GlobalRand.Name) {
				f.Set |= FactGlobalRand
			}
		case modulePrefix + "internal/lifecycle":
			// Any lifecycle use (Group.Go, Run, Stack) counts as
			// structured registration.
			f.Set |= FactTracked
		}
	case *ast.SendStmt:
		f.Set |= FactBlocking
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			f.Set |= FactBlocking
		}
	case *ast.RangeStmt:
		if t := pass.Info.TypeOf(v.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				f.Set |= FactBlocking
			}
		}
	case *ast.CallExpr:
		if what := blockingNetCall(pass.Info, v); what != "" {
			f.Set |= FactBlocking
		}
		if fn := syncMethod(pass.Info, v); fn != "" {
			switch fn {
			case "WaitGroup.Wait":
				f.Set |= FactBlocking | FactTracked
			case "WaitGroup.Done":
				f.Set |= FactTracked
			}
		}
	}
}

// syncMethod identifies calls to methods of sync types, returned as
// "Type.Method" ("WaitGroup.Wait"), or "".
func syncMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	rt := recvType(fn)
	if rt == nil {
		return ""
	}
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// computeMutMasks fills each node's mutation mask: a bit set when the
// function may write through that operand (field store, element store,
// or forwarding it to a mutating operand of a local or
// already-analyzed callee). Bit layout: methods carry the receiver at
// bit 0 with parameters shifted up one; plain functions and literals
// carry parameter i at bit i. calleeOperands lays call-site operands
// out in the same order.
func computeMutMasks(pass *Pass, in *Inter) {
	paramObjs := make(map[*CallNode]map[types.Object]int)
	for _, node := range in.Graph.Nodes() {
		var ft *ast.FuncType
		var recv *ast.FieldList
		if node.Decl != nil {
			ft = node.Decl.Type
			recv = node.Decl.Recv
		} else if node.Lit != nil {
			ft = node.Lit.Type
		}
		if ft == nil {
			continue
		}
		m := make(map[types.Object]int)
		i := 0
		if recv != nil {
			for _, field := range recv.List {
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						m[obj] = 0
					}
				}
			}
			i = 1
		}
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil && i < 16 {
						m[obj] = i
					}
					i++
				}
				if len(field.Names) == 0 {
					i++
				}
			}
		}
		paramObjs[node] = m
	}

	for changed := true; changed; {
		changed = false
		for _, node := range in.Graph.Nodes() {
			if node.Body == nil {
				continue
			}
			params := paramObjs[node]
			if len(params) == 0 {
				continue
			}
			f := in.facts[node]
			ast.Inspect(node.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range v.Lhs {
						if root := writeRoot(lhs); root != nil {
							if i, ok := params[pass.Info.Uses[root]]; ok {
								f.MutMask |= 1 << i
							}
						}
					}
				case *ast.IncDecStmt:
					if root := writeRoot(v.X); root != nil {
						if i, ok := params[pass.Info.Uses[root]]; ok {
							f.MutMask |= 1 << i
						}
					}
				case *ast.CallExpr:
					// delete(m, k) mutates its map operand.
					if bi, ok := pass.Info.Uses[identOf(v.Fun)].(*types.Builtin); ok && bi.Name() == "delete" && len(v.Args) > 0 {
						if root := rootIdent(v.Args[0]); root != nil {
							if i, ok := params[pass.Info.Uses[root]]; ok {
								f.MutMask |= 1 << i
							}
						}
					}
					// Forwarding: an operand passed into a mutating
					// operand slot of a resolvable callee.
					callee := ResolveCallee(pass.Info, v.Fun)
					if callee == nil {
						return true
					}
					cf := in.FactsFor(callee)
					if cf.MutMask == 0 {
						return true
					}
					for bit, arg := range calleeOperands(pass.Info, v, callee) {
						if bit >= 16 || cf.MutMask&(1<<bit) == 0 {
							continue
						}
						if root := rootIdent(arg); root != nil {
							if i, ok := params[pass.Info.Uses[root]]; ok {
								f.MutMask |= 1 << i
							}
						}
					}
				}
				return true
			})
			if f.MutMask != in.facts[node].MutMask {
				in.facts[node] = f
				changed = true
			}
		}
	}
}

// calleeOperands lays a resolved call's operand expressions out in the
// callee's MutMask bit order: for a method value call x.M(a, b) that
// is [x, a, b]; for a method expression T.M(x, a, b) the receiver is
// already explicit argument 0; for plain functions it is the argument
// list itself.
func calleeOperands(info *types.Info, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
				return append([]ast.Expr{sel.X}, call.Args...)
			}
		}
	}
	return call.Args
}

// writeRoot returns the base identifier of a write that mutates
// pointed-to state — x.f = v, x[i] = v, *x = v — but NOT a plain
// rebinding x = v, which only changes the local variable.
func writeRoot(lhs ast.Expr) *ast.Ident {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return rootIdent(v)
	case *ast.IndexExpr:
		return rootIdent(v)
	case *ast.StarExpr:
		return rootIdent(v.X)
	}
	return nil
}

// rootIdent walks selectors, indexes, unary &/* and parens down to the
// base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.CallExpr:
			return nil // derived through a call: lose the chain
		default:
			return nil
		}
	}
}

// identOf returns the expression's identifier when it is one (after
// unwrapping parens), else nil.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// reportEscalations reports every call, spawn, defer or value
// reference whose target lives in ANOTHER module-internal package and
// carries the given taint bit — the transitive escalation of a leaf
// check through helper indirection. Local targets are skipped: their
// own leaf use was already reported at its line (or cleansed by an
// allow, in which case the taint never propagated here). The describe
// callback renders the finding for one tainted callee.
func reportEscalations(pass *Pass, bit FactSet, describe func(fn *types.Func) string) {
	in := pass.Inter
	if in == nil {
		return
	}
	for _, node := range in.Graph.Nodes() {
		for _, e := range node.Edges {
			if e.Callee == nil || in.Graph.NodeFor(e.Callee) != nil {
				continue // a literal, or a local function: leaf reports cover it
			}
			pkg := e.Callee.Pkg()
			if pkg == nil || !strings.HasPrefix(canonicalPath(pkg.Path()), modulePrefix+"internal/") {
				continue
			}
			if in.Store.Lookup(e.Callee).Set.Has(bit) {
				pass.Report(Diagnostic{Pos: e.Pos.Pos(), Message: describe(e.Callee)})
			}
		}
	}
}
