package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// NilGuard enforces internal/obs's noop contract: every exported
// pointer-receiver method must open with a nil-receiver guard, so an
// uninstrumented code path (nil *Counter, nil *Registry, ...) pays one
// branch and zero allocations. bench_test.go pins the 0 allocs/op
// number; this analyzer pins the shape that makes it true, catching
// the new method that forgets the guard before it panics in a
// production noop path.
//
// Accepted guard: the method's first statement is an if whose
// condition contains `recv == nil` (possibly ||-combined with other
// cheap checks) and whose body returns. Methods with an unnamed or
// blank receiver cannot dereference it and are trivially safe.
var NilGuard = &Analyzer{
	Name: "nilguard",
	Doc: "require exported pointer-receiver methods in internal/obs to begin with " +
		"`if recv == nil { return ... }`, keeping nil instruments free noops",
	Run: runNilGuard,
}

func runNilGuard(pass *Pass) error {
	if !NeedsNilGuard(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvName, isPointer := receiver(fd)
			if !isPointer || recvName == "" || recvName == "_" {
				continue
			}
			if hasNilGuard(fd.Body, recvName) {
				continue
			}
			pass.Report(Diagnostic{
				Pos: fd.Name.Pos(),
				Message: fmt.Sprintf("exported method %s has a pointer receiver but no leading nil guard; "+
					"obs instruments must be safe (and free) to call through a nil pointer",
					fd.Name.Name),
			})
		}
	}
	return nil
}

// receiver returns the receiver's name and whether it is a pointer.
func receiver(fd *ast.FuncDecl) (name string, pointer bool) {
	if len(fd.Recv.List) != 1 {
		return "", false
	}
	field := fd.Recv.List[0]
	if _, ok := field.Type.(*ast.StarExpr); !ok {
		return "", false
	}
	if len(field.Names) == 0 {
		return "", true
	}
	return field.Names[0].Name, true
}

// hasNilGuard reports whether the body's first statement is
// `if <cond involving recv == nil> { ... return }`.
func hasNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return true // empty body dereferences nothing
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil || !condChecksNil(ifStmt.Cond, recv) {
		return false
	}
	if n := len(ifStmt.Body.List); n == 0 {
		return false
	}
	_, returns := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return returns
}

// condChecksNil walks ||-joined conditions looking for `recv == nil`
// or `nil == recv`.
func condChecksNil(e ast.Expr, recv string) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return condChecksNil(v.X, recv)
	case *ast.BinaryExpr:
		if v.Op == token.LOR {
			return condChecksNil(v.X, recv) || condChecksNil(v.Y, recv)
		}
		if v.Op != token.EQL {
			return false
		}
		return (isIdent(v.X, recv) && isIdent(v.Y, "nil")) ||
			(isIdent(v.X, "nil") && isIdent(v.Y, recv))
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
