// Package linttest is a small analysistest-style harness for the
// tastervet analyzers: it loads a fixture directory from testdata,
// type-checks it under a masquerade import path (classification is
// path-keyed, so a fixture can pose as any package class), runs
// analyzers, and checks the findings against // want "regexp" comments
// in the fixture source.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"tasterschoice/internal/lint"
)

// wantRe extracts an expectation from a comment: the diagnostic
// reported on the comment's line must match the quoted regexp.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// Run analyzes the fixture directory (relative to the caller's
// working directory, conventionally testdata/src/<name>) as a package
// imported at importPath, and asserts the diagnostics exactly match
// the fixture's // want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", stdlibExport),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if pkg == nil || len(typeErrs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, typeErrs)
	}

	diags, err := lint.RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	checkExpectations(t, fset, files, diags)
}

// Pkg names one fixture package of a RunMulti sequence: a testdata
// directory and the masquerade import path it type-checks under.
type Pkg struct {
	Dir        string
	ImportPath string
}

// RunMulti analyzes a dependency-ordered sequence of fixture packages
// through ONE shared fact store — the cross-package half of the
// interprocedural analyzers. Later fixtures may import earlier ones by
// their masquerade paths (the chained importer hands back the
// previously type-checked package, so object identity holds across the
// sequence exactly as it does in a standalone ./... run). Diagnostics
// from every package are checked against // want comments across all
// fixture files.
func RunMulti(t *testing.T, pkgs []Pkg, analyzers ...*lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	store := lint.NewFactStore()
	prior := make(map[string]*types.Package)
	var allFiles []*ast.File
	var allDiags []lint.Diagnostic

	for _, p := range pkgs {
		names, err := filepath.Glob(filepath.Join(p.Dir, "*.go"))
		if err != nil || len(names) == 0 {
			t.Fatalf("no fixture files in %s (%v)", p.Dir, err)
		}
		sort.Strings(names)
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}

		var typeErrs []error
		conf := types.Config{
			Importer: chainImporter{fset: fset, prior: prior},
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		pkg, _ := conf.Check(p.ImportPath, fset, files, info)
		if pkg == nil || len(typeErrs) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", p.Dir, typeErrs)
		}
		prior[p.ImportPath] = pkg

		diags, err := lint.RunAnalyzersFacts(fset, files, pkg, info, analyzers, store)
		if err != nil {
			t.Fatal(err)
		}
		allFiles = append(allFiles, files...)
		allDiags = append(allDiags, diags...)
	}
	checkExpectations(t, fset, allFiles, allDiags)
}

// chainImporter resolves fixture masquerade paths to the packages
// type-checked earlier in the RunMulti sequence, and everything else
// to stdlib export data.
type chainImporter struct {
	fset  *token.FileSet
	prior map[string]*types.Package
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.prior[path]; ok {
		return pkg, nil
	}
	return importer.ForCompiler(c.fset, "gc", stdlibExport).Import(path)
}

// expectation is one // want at a (file, line).
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := make(map[string]*expectation) // "file:line" -> expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), m[1], err)
				}
				p := fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = &expectation{re: re, raw: m[1]}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		w := wants[key]
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", p, d.Analyzer, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", p, d.Message, w.raw)
			continue
		}
		w.matched = true
	}
	for key, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
		}
	}
}

// stdlibExport resolves import paths to gc export data via
// `go list -export`, cached process-wide (fixtures import only a
// handful of stdlib packages).
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

func stdlibExport(path string) (io.ReadCloser, error) {
	exportMu.Lock()
	file, ok := exportCache[path]
	exportMu.Unlock()
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		exportMu.Lock()
		exportCache[path] = file
		exportMu.Unlock()
	}
	return os.Open(file)
}
