package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The allowlist: a finding is suppressed by an explicit, reasoned
// directive in the source —
//
//	//lint:allow <analyzer> -- <reason>
//
// either trailing the flagged line or on the line directly above it.
// The reason is mandatory and the analyzer name must exist: a
// malformed directive is itself a diagnostic, never a silent
// suppression, so a typo'd name cannot turn a check off.

// directivePrefix is written without a space after // — the Go
// convention for machine-read directives (like //go:build).
const directivePrefix = "//lint:allow"

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowSet records which lines each directive covers.
type AllowSet map[allowKey]bool

// Suppresses reports whether a diagnostic from analyzer at pos is
// covered by a directive on the same line or the line above.
func (s AllowSet) Suppresses(pos token.Position, analyzer string) bool {
	return s[allowKey{pos.Filename, pos.Line, analyzer}] ||
		s[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// ParseDirective splits one comment's text into analyzer and reason.
// It returns ok=false with a diagnostic message when the comment is a
// lint:allow directive but malformed; directive=false when the comment
// is not a lint:allow directive at all.
func ParseDirective(text string) (analyzer, reason string, directive, ok bool, errMsg string) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false, false, ""
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		// e.g. //lint:allowable — some other word, not this directive.
		return "", "", false, false, ""
	}
	// A subsequent // starts an ordinary comment (the fixture files use
	// this for // want expectations); the directive ends there.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	name, reason, found := strings.Cut(rest, "--")
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reason)
	if name == "" {
		return "", "", true, false, "malformed //lint:allow: missing analyzer name (want `//lint:allow <analyzer> -- <reason>`)"
	}
	if strings.ContainsAny(name, " \t") {
		return "", "", true, false, fmt.Sprintf("malformed //lint:allow: %q is not a single analyzer name (want `//lint:allow <analyzer> -- <reason>`)", name)
	}
	if !found || reason == "" {
		return "", "", true, false, fmt.Sprintf("malformed //lint:allow %s: missing `-- <reason>` — suppressions must say why", name)
	}
	return name, reason, true, true, ""
}

// CollectDirectives scans every comment in the files, returning the
// usable suppressions and a diagnostic (attributed to the
// pseudo-analyzer "allowdirective") for each malformed or
// unknown-analyzer directive.
func CollectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (AllowSet, []Diagnostic) {
	allows := make(AllowSet)
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allowdirective", Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, _, isDirective, ok, errMsg := ParseDirective(c.Text)
				if !isDirective {
					continue
				}
				if !ok {
					report(c.Pos(), errMsg)
					continue
				}
				if !known[name] {
					report(c.Pos(), fmt.Sprintf("//lint:allow names unknown analyzer %q (have %s)", name, knownNames(known)))
					continue
				}
				p := fset.Position(c.Pos())
				allows[allowKey{p.Filename, p.Line, name}] = true
			}
		}
	}
	return allows, bad
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	// Small fixed set; insertion-sort keeps this file dependency-light.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
