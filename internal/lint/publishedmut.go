package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PublishedMut enforces the RCU discipline the dnsblplane snapshot
// design rests on: a value handed to atomic.Pointer.Store (or
// CompareAndSwap) is published — other goroutines may already be
// reading it — so every write to it after the publish point is a data
// race waiting for the right interleaving. The chaos race suite can
// only catch the interleavings it happens to provoke; this analyzer
// catches the pattern structurally.
//
// Within the publishing function, writes after the Store through the
// published variable (or any local alias taken from it) are findings,
// as is passing the published value into a callee whose fact-store
// mutation mask says it writes through that operand — the
// interprocedural half, so hiding the write in a helper (the shape of
// the original symtab bug) does not hide it from the analyzer.
var PublishedMut = &Analyzer{
	Name: "publishedmut",
	Doc: "forbid writes to a value after it is published via atomic.Pointer.Store/CompareAndSwap " +
		"in engine packages; published snapshots are frozen (RCU) — build fully, then publish",
	Run: runPublishedMut,
}

func runPublishedMut(pass *Pass) error {
	if Classify(pass.Pkg.Path()) < ClassEngine {
		return nil
	}
	if pass.Inter == nil {
		return nil
	}
	for _, node := range pass.Inter.Graph.Nodes() {
		// Literals are scanned inside their enclosing declaration's
		// walk (they need its frozen set); only roots start one.
		if node.Decl != nil && node.Body != nil {
			checkPublishes(pass, node.Body)
		}
	}
	return nil
}

// atomicPublish returns the published-value argument of an
// atomic.Pointer[T].Store or CompareAndSwap call, or nil.
func atomicPublish(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	switch fn.Name() {
	case "Store":
		if len(call.Args) == 1 && isAtomicPointer(recvType(fn.Origin())) {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 && isAtomicPointer(recvType(fn.Origin())) {
			return call.Args[1]
		}
	}
	return nil
}

// isAtomicPointer reports whether t is (a pointer to)
// sync/atomic.Pointer[T]. Store on the scalar atomics (Int64, Value)
// publishes a copy, not shared structure, so only Pointer counts.
func isAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// checkPublishes scans one body in source order. After a publish of a
// local variable, writes through that variable (or aliases derived
// from it) are reported until the variable is rebound to a fresh
// value.
func checkPublishes(pass *Pass, body *ast.BlockStmt) {
	// frozen maps a published object (or alias) to the name it was
	// published under, for the diagnostic.
	frozen := make(map[types.Object]string)

	objOf := func(id *ast.Ident) types.Object {
		if obj := pass.Info.Uses[id]; obj != nil {
			return obj
		}
		return pass.Info.Defs[id]
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A literal's body may run before OR after the publish; a
			// deferred or spawned closure mutating the snapshot is
			// exactly the race. Keep scanning with the current frozen
			// set but do not let its rebinds unfreeze the outer walk.
			inner := make(map[types.Object]string, len(frozen))
			for k, val := range frozen {
				inner[k] = val
			}
			saved := frozen
			frozen = inner
			ast.Inspect(v.Body, walk)
			frozen = saved
			return false
		case *ast.AssignStmt:
			// Writes through frozen roots; then rebinds and aliases.
			for _, lhs := range v.Lhs {
				if root := writeRoot(lhs); root != nil {
					if name, ok := frozen[objOf(root)]; ok {
						pass.Report(Diagnostic{
							Pos: lhs.Pos(),
							Message: fmt.Sprintf("write to %s after it was published via atomic.Pointer; "+
								"published snapshots are frozen — apply the change to a fresh copy and re-publish", name),
						})
					}
				}
			}
			for i, lhs := range v.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(id)
				if obj == nil {
					continue
				}
				// Alias: q := frozenRoot[.f][i]... freezes q too.
				if i < len(v.Rhs) {
					if root := rootIdent(v.Rhs[i]); root != nil {
						if name, ok := frozen[objOf(root)]; ok {
							frozen[obj] = name
							continue
						}
					}
				}
				// Plain rebind to something un-frozen thaws the name.
				delete(frozen, obj)
			}
		case *ast.IncDecStmt:
			if root := writeRoot(v.X); root != nil {
				if name, ok := frozen[objOf(root)]; ok {
					pass.Report(Diagnostic{
						Pos: v.Pos(),
						Message: fmt.Sprintf("write to %s after it was published via atomic.Pointer; "+
							"published snapshots are frozen — apply the change to a fresh copy and re-publish", name),
					})
				}
			}
		case *ast.CallExpr:
			if arg := atomicPublish(pass.Info, v); arg != nil {
				if root := rootIdent(arg); root != nil {
					if obj := objOf(root); obj != nil {
						frozen[obj] = root.Name
					}
				}
				return false
			}
			// delete(frozen.m, k) and append-into both mutate.
			if bi, ok := pass.Info.Uses[identOf(v.Fun)].(*types.Builtin); ok && bi.Name() == "delete" && len(v.Args) > 0 {
				if root := rootIdent(v.Args[0]); root != nil {
					if name, ok := frozen[objOf(root)]; ok {
						pass.Report(Diagnostic{
							Pos: v.Pos(),
							Message: fmt.Sprintf("delete from %s after it was published via atomic.Pointer; "+
								"published snapshots are frozen", name),
						})
					}
				}
				return true
			}
			// Interprocedural: the published value passed into an
			// operand slot the callee's mutation mask marks written.
			callee := ResolveCallee(pass.Info, v.Fun)
			if callee == nil {
				return true
			}
			cf := pass.Inter.FactsFor(callee)
			if cf.MutMask == 0 {
				return true
			}
			for bit, operand := range calleeOperands(pass.Info, v, callee) {
				if bit >= 16 || cf.MutMask&(1<<bit) == 0 {
					continue
				}
				if root := rootIdent(operand); root != nil {
					if name, ok := frozen[objOf(root)]; ok {
						pass.Report(Diagnostic{
							Pos: operand.Pos(),
							Message: fmt.Sprintf("%s escapes to %s.%s, which writes through it, after %s was published "+
								"via atomic.Pointer; published snapshots are frozen",
								name, callee.Pkg().Name(), ObjectKey(callee), name),
						})
					}
				}
			}
		}
		return true
	}
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
}
