package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StringAlloc forbids per-iteration string building in engine-tier
// packages: a fmt.Sprintf (or Sprint/Sprintln) call or a non-constant
// string concatenation inside a loop allocates on every pass, and the
// generation hot path runs such loops once per message. Hot-path code
// carries interned symtab IDs and renders into pooled []byte buffers
// instead; true serialization edges (report writers, raw feed files)
// mark themselves with //lint:allow stringalloc.
var StringAlloc = &Analyzer{
	Name: "stringalloc",
	Doc: "forbid fmt.Sprintf/fmt.Sprint and string concatenation inside loops " +
		"in engine-tier packages; intern through symtab or append into a pooled " +
		"[]byte, and mark serialization edges with //lint:allow stringalloc",
	Run: runStringAlloc,
}

// sprintFuncs are the fmt functions that build and return a fresh
// string. The Append/Fprint families write into caller-supplied
// destinations and stay legal.
var sprintFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

func runStringAlloc(pass *Pass) error {
	if !NeedsStringAlloc(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// The rule protects the production hot path; test and bench
		// helpers build label strings by design and stay exempt (the
		// chaos build runs with -tests).
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch v := n.(type) {
			case *ast.CallExpr:
				if !inLoop(stack) {
					return true
				}
				if name, ok := sprintCall(pass, v); ok {
					pass.Report(Diagnostic{
						Pos: v.Pos(),
						Message: fmt.Sprintf("fmt.%s inside a loop allocates a string per iteration; "+
							"intern through symtab or append into a pooled []byte "+
							"(//lint:allow stringalloc on serialization edges)", name),
					})
				}
			case *ast.BinaryExpr:
				if v.Op != token.ADD || !inLoop(stack) {
					return true
				}
				// Report only the outermost expression of an a+b+c
				// chain, and let fully constant concatenations through:
				// the compiler folds those at build time.
				if isStringConcat(pass, v) && !isConstant(pass, v) && !parentIsStringConcat(pass, stack) {
					pass.Report(Diagnostic{
						Pos: v.Pos(),
						Message: "string concatenation inside a loop allocates per iteration; " +
							"intern through symtab or append into a pooled []byte " +
							"(//lint:allow stringalloc on serialization edges)",
					})
				}
			case *ast.AssignStmt:
				if v.Tok != token.ADD_ASSIGN || !inLoop(stack) {
					return true
				}
				for _, lhs := range v.Lhs {
					if t := pass.Info.Types[lhs].Type; t != nil && isStringType(t) {
						pass.Report(Diagnostic{
							Pos: v.Pos(),
							Message: "string += inside a loop reallocates the whole string per iteration; " +
								"append into a pooled []byte or strings.Builder " +
								"(//lint:allow stringalloc on serialization edges)",
						})
					}
				}
			}
			return true
		})
	}
	return nil
}

// inLoop reports whether the node on top of the stack executes once
// per loop iteration: it sits inside the body (or, for a for-stmt, the
// per-iteration condition/post clauses) of some enclosing loop. A
// range statement's range expression evaluates once and is excluded.
func inLoop(stack []ast.Node) bool {
	for i := 0; i < len(stack)-1; i++ {
		switch loop := stack[i].(type) {
		case *ast.ForStmt:
			child := stack[i+1]
			if child == loop.Body || child == loop.Cond || child == loop.Post {
				return true
			}
		case *ast.RangeStmt:
			if stack[i+1] == loop.Body {
				return true
			}
		}
	}
	return false
}

// sprintCall reports whether the call is one of fmt's string-building
// functions, returning its name.
func sprintCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return "", false
	}
	if fn, isFunc := obj.(*types.Func); !isFunc || fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return obj.Name(), sprintFuncs[obj.Name()]
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isStringConcat reports whether the ADD expression is typed string.
func isStringConcat(pass *Pass, e *ast.BinaryExpr) bool {
	t := pass.Info.Types[ast.Expr(e)].Type
	return t != nil && isStringType(t)
}

// isConstant reports whether the expression folds to a constant.
func isConstant(pass *Pass, e ast.Expr) bool {
	return pass.Info.Types[e].Value != nil
}

// parentIsStringConcat reports whether the stacked node directly under
// inspection hangs off another string ADD — i.e. it is an inner term
// of a larger concatenation that will be reported once at the top.
func parentIsStringConcat(pass *Pass, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.BinaryExpr)
	return ok && parent.Op == token.ADD && isStringConcat(pass, parent)
}
