// Package lint is tasterschoice's static-enforcement layer: a small
// go/analysis-style framework plus the six project analyzers that
// mechanically check the contracts MECHANISMS.md states in prose —
// sorted-key float accumulation, the simclock seam instead of the wall
// clock, randutil streams instead of global math/rand state, the
// nil-receiver noop contract of internal/obs, the Context-variant
// convention on blocking edge-package APIs, and the no-per-message
// string-building rule of the interned hot path.
//
// The framework is deliberately a subset of golang.org/x/tools
// go/analysis (the module is dependency-free, so it cannot import the
// real thing): an Analyzer has a name, a doc string and a Run function
// over a type-checked package; diagnostics suppressed by a well-formed
// //lint:allow directive are dropped before they reach the caller.
// cmd/tastervet compiles every analyzer into one multichecker that
// runs standalone or as a `go vet -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a fully loaded package
// through the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why, shown by `tastervet -help`.
	Doc string
	// Run performs the check. Diagnostics are reported through
	// pass.Report; returning an error aborts the whole run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package. Its Path is the import path the
	// classification table keys on.
	Pkg *types.Package
	// Info has Uses, Defs, Types and Selections filled in.
	Info *types.Info
	// Inter holds the package's interprocedural results — call graph
	// and computed function facts — shared by every analyzer in the
	// run. Nil only for hand-built passes in tests.
	Inter *Inter
	// Report records one diagnostic. The runner applies //lint:allow
	// suppression, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the full tastervet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatMapRange,
		WallClock,
		GlobalRand,
		NilGuard,
		CtxBlocking,
		StringAlloc,
		PublishedMut,
		LockScope,
		GoroLeak,
	}
}

// byName returns the analyzers from All keyed by name, for directive
// validation.
func byName() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving diagnostics sorted by position, using a fresh fact store —
// the single-package entry point. Well-formed //lint:allow directives
// suppress matching diagnostics on their line; malformed or
// unknown-analyzer directives are themselves reported (under the
// pseudo-analyzer name "allowdirective") so a typo cannot silently
// disable a check.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersFacts(fset, files, pkg, info, analyzers, NewFactStore())
}

// RunAnalyzersFacts is RunAnalyzers against a caller-owned fact store:
// the package's interprocedural facts are computed once (consulting the
// store for dependencies already analyzed into it) and published back
// into the store for the packages that import this one. Standalone
// mode threads one store through a dependency-ordered package walk;
// unitchecker mode fills it from the .vetx files cmd/go provides and
// serializes it back out.
func RunAnalyzersFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	allows, bad := CollectDirectives(fset, files, byName())
	diags := append([]Diagnostic(nil), bad...)
	inter := ComputeInter(&Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, allows, store)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Inter:    inter,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if d.Pos.IsValid() && allows.Suppresses(fset.Position(d.Pos), a.Name) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
