package lint_test

import (
	"strings"
	"testing"

	"tasterschoice/internal/lint"
)

// FuzzAllowDirective hammers the two pure parsers every analyzer run
// trusts: the //lint:allow directive parser (a malformed directive
// must be a diagnostic, never a silent suppression — and never a
// panic) and the package-classification table (every path must land
// on exactly one class, stably under go test's package-variant
// decorations). Crash reproducers land in testdata/fuzz and re-run on
// every plain `go test`.
func FuzzAllowDirective(f *testing.F) {
	seeds := []struct{ text, path string }{
		{"//lint:allow wallclock -- deadline math on an edge socket", "tasterschoice/internal/feedsync"},
		{"//lint:allow globalrand -- seeded demo", "tasterschoice/internal/mailflow"},
		{"//lint:allow publishedmut -- snapshot is still private here", "tasterschoice/internal/dnsblplane"},
		{"//lint:allow lockscope", "tasterschoice/internal/overload"},
		{"//lint:allow", "tasterschoice/internal/distsweep"},
		{"//lint:allow  -- reason with no name", "tasterschoice/internal/stats"},
		{"//lint:allow two words -- reason", "tasterschoice/internal/report"},
		{"//lint:allowable not this directive", "tasterschoice/internal/obs"},
		{"//lint:allow goroleak -- joined below // want \"untracked\"", "tasterschoice/internal/symtab"},
		{"//lint:allow\twallclock\t--\ttabs everywhere", "tasterschoice/internal/analysis [pkg.test]"},
		{"// ordinary comment", "tasterschoice/internal/lint/testdata"},
		{"//lint:allow wallclock --", "fmt"},
		{"//lint:allow wallclock -- a -- b -- c", "tasterschoice/internal/dnsbl_test"},
		{"//lint:allow wallclock --  ", "tasterschoice/cmd/tastervet"},
		{"", ""},
	}
	for _, s := range seeds {
		f.Add(s.text, s.path)
	}
	f.Fuzz(func(t *testing.T, text, path string) {
		analyzer, reason, directive, ok, errMsg := lint.ParseDirective(text)

		// The state space is three-valued: not a directive, malformed
		// directive (with a message), or usable suppression. Nothing
		// else may come back.
		switch {
		case !directive:
			if ok || analyzer != "" || reason != "" || errMsg != "" {
				t.Fatalf("ParseDirective(%q): not a directive but returned (%q, %q, ok=%v, %q)",
					text, analyzer, reason, ok, errMsg)
			}
		case !ok:
			if analyzer != "" || reason != "" {
				t.Fatalf("ParseDirective(%q): malformed but returned name/reason (%q, %q)",
					text, analyzer, reason)
			}
			if errMsg == "" {
				t.Fatalf("ParseDirective(%q): malformed with empty diagnostic — a silent suppression path", text)
			}
		default:
			if !strings.HasPrefix(text, "//lint:allow") {
				t.Fatalf("ParseDirective(%q): ok=true on text without the directive prefix", text)
			}
			if analyzer == "" || strings.ContainsAny(analyzer, " \t") {
				t.Fatalf("ParseDirective(%q): accepted analyzer name %q", text, analyzer)
			}
			if reason == "" {
				t.Fatalf("ParseDirective(%q): accepted an empty reason", text)
			}
			if analyzer != strings.TrimSpace(analyzer) || reason != strings.TrimSpace(reason) {
				t.Fatalf("ParseDirective(%q): returned untrimmed fields (%q, %q)", text, analyzer, reason)
			}
			// Canonical re-render must parse back to the same analyzer
			// (and reason, when the reason survives the // comment cut).
			canon := "//lint:allow " + analyzer + " -- " + reason
			a2, r2, d2, ok2, _ := lint.ParseDirective(canon)
			if !d2 || !ok2 || a2 != analyzer {
				t.Fatalf("ParseDirective round-trip: %q reparsed to (%q, directive=%v, ok=%v)",
					canon, a2, d2, ok2)
			}
			if !strings.Contains(reason, "//") && r2 != reason {
				t.Fatalf("ParseDirective round-trip: reason %q reparsed to %q", reason, r2)
			}
		}

		// The classification table: total, bounded, and stable under
		// the decorations go test puts on package variants.
		c := lint.Classify(path)
		if c < lint.ClassExempt || c > lint.ClassDeterministic {
			t.Fatalf("Classify(%q) = %d: outside the class range", path, c)
		}
		if got := lint.Classify(path + " [pkg.test]"); got != c {
			t.Fatalf("Classify(%q) = %v but the [pkg.test] variant classifies as %v", path, c, got)
		}
		// canonicalPath strips exactly one _test suffix, so the
		// invariant only holds for paths that are not already test
		// variants themselves.
		if !strings.HasSuffix(path, "_test") {
			if got := lint.Classify(path + "_test"); got != c {
				t.Fatalf("Classify(%q) = %v but the external-test variant classifies as %v", path, c, got)
			}
		}
		if !strings.HasPrefix(path, "tasterschoice/internal/") && c != lint.ClassExempt {
			t.Fatalf("Classify(%q) = %v: paths outside internal/ must be exempt", path, c)
		}
	})
}
