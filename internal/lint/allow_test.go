package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		name      string
		text      string
		analyzer  string
		reason    string
		directive bool
		ok        bool
		errSubstr string
	}{
		{
			name:      "well formed",
			text:      "//lint:allow wallclock -- tests inject a recorder",
			analyzer:  "wallclock",
			reason:    "tests inject a recorder",
			directive: true,
			ok:        true,
		},
		{
			name:      "trailing comment cut",
			text:      `//lint:allow globalrand -- seeded demo // unrelated trailer`,
			analyzer:  "globalrand",
			reason:    "seeded demo",
			directive: true,
			ok:        true,
		},
		{
			name:      "not a directive",
			text:      "// ordinary comment mentioning lint:allow elsewhere",
			directive: false,
		},
		{
			name:      "prefix of another word",
			text:      "//lint:allowable x -- y",
			directive: false,
		},
		{
			name:      "missing analyzer name",
			text:      "//lint:allow",
			directive: true,
			ok:        false,
			errSubstr: "missing analyzer name",
		},
		{
			name:      "missing name before reason",
			text:      "//lint:allow -- because",
			directive: true,
			ok:        false,
			errSubstr: "missing analyzer name",
		},
		{
			name:      "multi-word name",
			text:      "//lint:allow wallclock globalrand -- both",
			directive: true,
			ok:        false,
			errSubstr: "not a single analyzer name",
		},
		{
			name:      "missing reason",
			text:      "//lint:allow wallclock",
			directive: true,
			ok:        false,
			errSubstr: "missing `-- <reason>`",
		},
		{
			name:      "separator without reason text",
			text:      "//lint:allow wallclock --",
			directive: true,
			ok:        false,
			errSubstr: "missing `-- <reason>`",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analyzer, reason, directive, ok, errMsg := ParseDirective(tc.text)
			if directive != tc.directive || ok != tc.ok {
				t.Fatalf("ParseDirective(%q) = directive=%v ok=%v, want directive=%v ok=%v",
					tc.text, directive, ok, tc.directive, tc.ok)
			}
			if analyzer != tc.analyzer || reason != tc.reason {
				t.Errorf("ParseDirective(%q) = analyzer=%q reason=%q, want %q / %q",
					tc.text, analyzer, reason, tc.analyzer, tc.reason)
			}
			if tc.errSubstr != "" && !strings.Contains(errMsg, tc.errSubstr) {
				t.Errorf("ParseDirective(%q) errMsg = %q, want substring %q", tc.text, errMsg, tc.errSubstr)
			}
			if tc.errSubstr == "" && errMsg != "" {
				t.Errorf("ParseDirective(%q) unexpected errMsg %q", tc.text, errMsg)
			}
		})
	}
}

// parseOne parses src as a single file and returns its fileset and AST.
func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestCollectDirectivesReportsBadOnes(t *testing.T) {
	const src = `package p

func a() {
	_ = 1 //lint:allow wallclock -- fine
}

func b() {
	_ = 2 //lint:allow wallclock
}

func c() {
	_ = 3 //lint:allow wallcluck -- typo'd name
}
`
	fset, f := parseOne(t, src)
	known := map[string]bool{"wallclock": true, "globalrand": true}
	allows, bad := CollectDirectives(fset, []*ast.File{f}, known)

	if len(allows) != 1 {
		t.Fatalf("got %d usable suppressions, want 1: %v", len(allows), allows)
	}
	if !allows.Suppresses(token.Position{Filename: "allow_fixture.go", Line: 4}, "wallclock") {
		t.Errorf("well-formed directive on line 4 not recorded")
	}

	if len(bad) != 2 {
		t.Fatalf("got %d bad-directive diagnostics, want 2: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "allowdirective" {
			t.Errorf("bad directive attributed to %q, want allowdirective", d.Analyzer)
		}
	}
	if !strings.Contains(bad[0].Message, "missing `-- <reason>`") {
		t.Errorf("missing-reason diagnostic = %q", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, `unknown analyzer "wallcluck"`) ||
		!strings.Contains(bad[1].Message, "globalrand, wallclock") {
		t.Errorf("unknown-analyzer diagnostic should name the typo and list known analyzers, got %q", bad[1].Message)
	}
}

func TestSuppressesCoversSameLineAndLineAbove(t *testing.T) {
	const src = `package p

//lint:allow nilguard -- directive above the flagged line
func f() {}
`
	fset, f := parseOne(t, src)
	allows, bad := CollectDirectives(fset, []*ast.File{f}, map[string]bool{"nilguard": true})
	if len(bad) != 0 {
		t.Fatalf("unexpected bad directives: %v", bad)
	}
	pos := func(line int) token.Position {
		return token.Position{Filename: "allow_fixture.go", Line: line}
	}
	if !allows.Suppresses(pos(3), "nilguard") {
		t.Errorf("directive line itself not suppressed")
	}
	if !allows.Suppresses(pos(4), "nilguard") {
		t.Errorf("line below directive not suppressed")
	}
	if allows.Suppresses(pos(5), "nilguard") {
		t.Errorf("two lines below directive wrongly suppressed")
	}
	if allows.Suppresses(pos(4), "wallclock") {
		t.Errorf("suppression leaked to a different analyzer")
	}
}
