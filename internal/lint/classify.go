package lint

import "strings"

// Class places a package on the determinism spectrum the analyzers key
// off. The classification lives here, in one table, so adding a
// package means one line — not edits to five analyzers.
type Class int

const (
	// ClassExempt packages (cmd/, examples/, the module root, anything
	// unlisted outside internal/) are entry points and harnesses; they
	// may touch the wall clock and real I/O freely.
	ClassExempt Class = iota
	// ClassEdge packages sit on the network boundary. They may use the
	// wall clock (deadlines, backoff sleeps) but their exported
	// blocking APIs must follow the Context-variant convention and
	// nothing in them may consume global math/rand state.
	ClassEdge
	// ClassEngine packages are simulation and infrastructure code that
	// must be wall-clock free (simclock.Clock or an injected func() is
	// the only time source) and global-rand free.
	ClassEngine
	// ClassDeterministic packages produce the paper's comparison
	// output. Everything in ClassEngine applies, plus float64
	// accumulation over map iteration order is forbidden — one
	// unsorted sum makes the purity/coverage/timing tables drift
	// between runs in the last ulp.
	ClassDeterministic
)

func (c Class) String() string {
	switch c {
	case ClassEdge:
		return "edge"
	case ClassEngine:
		return "engine"
	case ClassDeterministic:
		return "deterministic"
	default:
		return "exempt"
	}
}

// modulePrefix is the import-path prefix of this module's packages.
const modulePrefix = "tasterschoice/"

// classTable is the single source of truth for non-default classes.
// Keys are import paths relative to internal/. Internal packages not
// listed default to ClassEngine — a new package gets the strict
// contract until someone consciously relaxes it here.
var classTable = map[string]Class{
	// Deterministic output: the comparison tables and the engine that
	// feeds them.
	"analysis": ClassDeterministic,
	"stats":    ClassDeterministic,
	"mailflow": ClassDeterministic,
	"report":   ClassDeterministic,

	// Engine with a wire protocol: distsweep keeps the strict engine
	// contract (its byte-identity guarantee is a determinism claim) but
	// opts into the edge packages' ctxblocking contract below, since it
	// dials, accepts and parks on channels like one.
	"distsweep": ClassEngine,

	// The sharded query plane serves sockets like an edge package but
	// keeps the strict engine contract: an answer must be a pure
	// function of (query bytes, listing state), replayable under an
	// injected clock, which is what the chaos oracle asserts. Like
	// distsweep it opts into ctxblocking below, and its read loop joins
	// the stringalloc hot-path set.
	"dnsblplane": ClassEngine,

	// Admission control: overload is listed explicitly rather than
	// left to the default — its shed decisions must replay bit-for-bit
	// from (seed, clock), so it keeps the engine clock/RNG contract
	// even though every caller is an edge package. Like distsweep it
	// also opts into ctxblocking below: its queues park callers.
	"overload": ClassEngine,

	// Network boundary: sockets, deadlines, drains.
	"dnsbl":     ClassEdge,
	"faultnet":  ClassEdge,
	"feedsync":  ClassEdge,
	"lifecycle": ClassEdge,
	"mta":       ClassEdge,
	"smtpd":     ClassEdge,
	"webhost":   ClassEdge,
}

// ctxContractPackages are the edge packages whose exported blocking
// APIs must offer a context.Context variant (the convention the
// lifecycle PR established: Listed/ListedContext, Tail/TailDurable).
var ctxContractPackages = map[string]bool{
	"distsweep":  true,
	"dnsbl":      true,
	"dnsblplane": true,
	"feedsync":   true,
	"overload":   true,
	"smtpd":      true,
}

// nilGuardPackages are the packages whose exported pointer-receiver
// methods must open with a nil-receiver guard, protecting the
// documented "nil instrument is a free noop" contract.
var nilGuardPackages = map[string]bool{
	"obs": true,
}

// stringAllocPackages are the dataset-build hot-path packages where
// per-iteration string building is banned: these run loops once per
// message (or once per domain × feed), and the interned-symbol design
// keeps them allocation-free. Diagnostic, reporting and edge packages
// build strings as their job and stay out of this set; benchref is
// excluded because it deliberately freezes the pre-interning engine,
// string churn included.
var stringAllocPackages = map[string]bool{
	"analysis":   true,
	"dnsblplane": true,
	"dnszone":    true,
	"domain":     true,
	"ecosystem":  true,
	"feeds":      true,
	"mailflow":   true,
	"oracle":     true,
	"randutil":   true,
	"simclock":   true,
	"stats":      true,
	"symtab":     true,
	"webcrawl":   true,
}

// canonicalPath strips go test's package-variant decorations: the
// " [pkg.test]" suffix on internal test variants and the trailing
// "_test" of external test packages, so fixtures and -tests runs
// classify like the package under test.
func canonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	return path
}

// internalName returns the path relative to <module>/internal/ and
// whether the package lives there at all.
func internalName(path string) (string, bool) {
	path = canonicalPath(path)
	rest, ok := strings.CutPrefix(path, modulePrefix+"internal/")
	if !ok {
		return "", false
	}
	return rest, true
}

// Classify returns the class of an import path. Subpackages inherit
// their nearest listed ancestor's class (internal/lint/testdata paths
// never reach this: fixtures carry explicit masquerade paths).
func Classify(path string) Class {
	name, ok := internalName(path)
	if !ok {
		return ClassExempt
	}
	for {
		if c, listed := classTable[name]; listed {
			return c
		}
		i := strings.LastIndex(name, "/")
		if i < 0 {
			return ClassEngine
		}
		name = name[:i]
	}
}

// NeedsCtxContract reports whether ctxblocking applies to the package.
func NeedsCtxContract(path string) bool {
	name, ok := internalName(path)
	if !ok {
		return false
	}
	if i := strings.Index(name, "/"); i >= 0 {
		name = name[:i]
	}
	return ctxContractPackages[name]
}

// NeedsNilGuard reports whether nilguard applies to the package.
func NeedsNilGuard(path string) bool {
	name, ok := internalName(path)
	if !ok {
		return false
	}
	return nilGuardPackages[name]
}

// NeedsStringAlloc reports whether stringalloc applies to the package.
// Subpackages inherit their top-level package's membership.
func NeedsStringAlloc(path string) bool {
	name, ok := internalName(path)
	if !ok {
		return false
	}
	if i := strings.Index(name, "/"); i >= 0 {
		name = name[:i]
	}
	return stringAllocPackages[name]
}
