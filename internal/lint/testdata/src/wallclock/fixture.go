// Fixture for the wallclock analyzer; the test runs it under the
// engine import path tasterschoice/internal/parallel.
package fixture

import "time"

func bad() time.Time {
	return time.Now() // want "time.Now in engine package"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in engine package"
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep in engine package"
}

// References smuggle the clock as effectively as calls.
var sleepSeam = time.Sleep // want "time.Sleep in engine package"

// Constructing instants and durations is fine — only reading the wall
// clock is banned.
func okConstruct() time.Time {
	return time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC).Add(3 * time.Hour)
}

// allowed documents why this path may read the wall clock.
func allowed() time.Time {
	return time.Now() //lint:allow wallclock -- fixture: measures real latency for an obs histogram only
}

// sneaky shows a malformed directive being reported instead of
// honored: the finding on the next line survives.
func sneaky() time.Time {
	//lint:allow wallclock // want "missing `-- <reason>`"
	return time.Now() // want "time.Now in engine package"
}
