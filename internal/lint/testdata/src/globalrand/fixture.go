// Fixture for the globalrand analyzer; the test runs it under the
// import path tasterschoice/internal/mailflow.
package fixture

import "math/rand"

func badDraw() int {
	return rand.Intn(10) // want "process-global RNG"
}

func badSeed() {
	rand.Seed(42) // want "process-global RNG"
}

func badFloat() float64 {
	return rand.Float64() // want "process-global RNG"
}

// References count too: storing the global-state function forwards the
// shared generator.
var draw = rand.Int63 // want "process-global RNG"

// okExplicit builds an explicit generator — the constructors stay
// legal; the ban is on hidden shared state.
func okExplicit() float64 {
	r := rand.New(rand.NewSource(7))
	return r.Float64()
}

// okType references the type, not the global state.
func okType(r *rand.Rand) int {
	return r.Intn(10)
}

func allowed() int {
	return rand.Int() //lint:allow globalrand -- fixture: demonstrating the allowlist syntax
}
