// Fixture for the goroleak analyzer; the test runs it under the
// engine import path tasterschoice/internal/distsweep. The bad cases
// reintroduce the historical distsweep bug: the coordinator's accept
// loop was spawned with nothing to drain it, so Close could return
// while the loop (and its per-connection handlers) still ran.
package fixture

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// badAcceptLoop is the reintroduced historical bug: an accept loop
// spawned with no ctx, no WaitGroup, no lifecycle registration.
func (s *server) badAcceptLoop() {
	go s.acceptLoop() // want "untracked goroutine"
}

func (s *server) acceptLoop() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}

func badLit() {
	go func() { // want "untracked goroutine"
		work()
	}()
}

// badDynamic: a function-typed variable the analyzer cannot see into,
// and no ctx handed over at the spawn site.
func badDynamic(fn func()) {
	go fn() // want "cannot prove tracked"
}

func work() {}

// okWaitGroup: Done registers the goroutine with a WaitGroup.
func (s *server) okWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// okCtxCapture: the closure observes a captured ctx (through a select
// comm clause, the common shutdown shape).
func (s *server) okCtxCapture(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		case <-s.done:
		}
	}()
}

// okCtxArg: ctx threaded to the spawned function.
func okCtxArg(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// okTransitive: the WaitGroup registration hides two helpers down;
// the call-graph facts still see it.
func (s *server) okTransitive() {
	s.wg.Add(1)
	go s.runner()
}

func (s *server) runner() { s.finish() }
func (s *server) finish() { s.wg.Done() }

// okDynamicCtx: dynamic callee, but a ctx crosses the spawn site.
func okDynamicCtx(ctx context.Context, fn func(context.Context)) {
	go fn(ctx)
}

func allowedOrphan() {
	//lint:allow goroleak -- fixture: fire-and-forget metric flush, joined by process exit
	go work()
}
