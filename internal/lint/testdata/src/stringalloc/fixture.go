// Fixture for the stringalloc analyzer; the test runs it under the
// import path tasterschoice/internal/mailflow (engine tier).
package fixture

import "fmt"

func badSprintf(domains []string) {
	for _, d := range domains {
		_ = fmt.Sprintf("http://%s/", d) // want "fmt.Sprintf inside a loop"
	}
}

func badSprint(n int) {
	for i := 0; i < n; i++ {
		_ = fmt.Sprint(i) // want "fmt.Sprint inside a loop"
	}
}

func badConcat(domains []string) []string {
	urls := make([]string, 0, len(domains))
	for _, d := range domains {
		urls = append(urls, "http://"+d+"/") // want "string concatenation inside a loop"
	}
	return urls
}

func badConcatInCond(s string) {
	for i := 0; isShort(s + "x"); i++ { // want "string concatenation inside a loop"
	}
}

func badPlusEquals(domains []string) string {
	out := ""
	for _, d := range domains {
		out += d // want "string .= inside a loop"
	}
	return out
}

// okOutsideLoop: per-call, not per-iteration — outside this analyzer's
// scope.
func okOutsideLoop(d string) string {
	return fmt.Sprintf("http://%s/", d)
}

// okConstFold: the compiler folds constant concatenation at build
// time; nothing allocates per iteration.
func okConstFold(n int) {
	for i := 0; i < n; i++ {
		_ = "http://" + "example.com" + "/"
	}
}

// okRangeExpr: a range expression evaluates once, before the loop.
func okRangeExpr(a, b string) {
	for range a + b {
	}
}

// okAppend: fmt.Appendf writes into a caller buffer; only the S*
// family is banned.
func okAppend(buf []byte, domains []string) []byte {
	for _, d := range domains {
		buf = fmt.Appendf(buf[:0], "http://%s/", d)
	}
	return buf
}

// okIntAdd: + on non-strings is arithmetic, not allocation.
func okIntAdd(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum = sum + x
	}
	return sum
}

// allowed marks a serialization edge: rendering the final report is
// where strings are supposed to come back.
func allowed(domains []string) {
	for _, d := range domains {
		_ = fmt.Sprintf("%s\n", d) //lint:allow stringalloc -- fixture: serialization edge
	}
}

func isShort(s string) bool { return len(s) < 8 }
