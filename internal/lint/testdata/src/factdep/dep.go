// Fixture dependency package for the cross-package fact tests: it
// poses as the edge package tasterschoice/internal/feedsync, where
// wall-clock reads and blocking I/O are legal. What matters is the
// facts it exports — the engine-side fixture (factmain) imports this
// package and every finding over there keys on facts computed here.
package factdep

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// SlowNow legally reads the wall clock at the edge tier — and is
// therefore wallclock-tainted for engine callers.
func SlowNow() time.Time { return time.Now() }

// Jitter hides the wall clock one call deeper; the taint fixpoint
// carries it through.
func Jitter() time.Duration { return time.Since(SlowNow()) }

// Pick draws from the process-global RNG — banned even here at the
// edge tier, so the leaf finding fires in this package AND the taint
// escalates to engine callers.
func Pick(n int) int {
	return rand.Intn(n) // want "process-global RNG"
}

// Fetch parks on the channel until a value arrives: Blocking fact.
func Fetch(ch chan int) int { return <-ch }

// Scrub zeroes counts in place — its mutation mask marks parameter 0
// written.
func Scrub(m map[string]int) {
	for k := range m {
		m[k] = 0
	}
}

// Pump is a worker whose Run registers with its WaitGroup: goroutines
// spawned onto Run are tracked, and importers learn that from the
// exported Tracked fact, not from the spawn site.
type Pump struct {
	wg sync.WaitGroup
}

func (p *Pump) Start()            { p.wg.Add(1) }
func (p *Pump) Run()              { defer p.wg.Done(); work() }
func (p *Pump) Wait()             { p.wg.Wait() }
func Monitor(ctx context.Context) { <-ctx.Done() }
func work()                       {}
