// Fixture for the lockscope analyzer; the test runs it under the
// engine import path tasterschoice/internal/overload. The bad cases
// reintroduce the historical overload bug: the admission queue once
// parked on its hand-off channel with the mutex still held, convoying
// every producer behind a single slow consumer.
package fixture

import (
	"net"
	"sync"
)

type queue struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cond  *sync.Cond
	items []int
	ch    chan int
	wg    sync.WaitGroup
}

// badSend is the reintroduced historical bug: a channel park under
// the queue mutex.
func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.ch <- v // want "channel send while holding q.mu"
	q.mu.Unlock()
}

func (q *queue) badRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "channel receive while holding q.mu"
}

func (q *queue) badWait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wg.Wait() // want "sync.WaitGroup.Wait while holding q.mu"
}

func (q *queue) badSelect() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "select with no default case parks while holding q.mu"
	case v := <-q.ch:
		return v
	}
}

func (q *queue) badDial(addr string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	conn, _ := net.Dial("tcp", addr) // want "net.Dial while holding q.mu"
	_ = conn
}

func (q *queue) badRange() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	sum := 0
	for v := range q.ch { // want "ranging over a channel while holding q.mu"
		sum += v
	}
	return sum
}

// badRLock: read locks convoy writers just the same.
func (q *queue) badRLock() int {
	q.rw.RLock()
	defer q.rw.RUnlock()
	return <-q.ch // want "channel receive while holding q.rw"
}

// park blocks; the analyzer knows from its computed Blocking fact,
// so calling it under the lock is as bad as parking inline.
func (q *queue) park() int { return <-q.ch }

func (q *queue) badHelper() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.park() // want "call to queue.park, which can block while holding q.mu"
}

// okUnlockThenPark is the sanctioned overload.Queue.PopContext shape:
// give the lock back before parking.
func (q *queue) okUnlockThenPark() int {
	q.mu.Lock()
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		return v
	}
	q.mu.Unlock()
	return <-q.ch
}

// okCondWait: sync.Cond.Wait releases the mutex while parked.
func (q *queue) okCondWait() {
	q.mu.Lock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// okSelectDefault: a select with a default case polls, never parks.
func (q *queue) okSelectDefault() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

// okSpawn: blocking inside a spawned goroutine does not hold the
// spawner's lock.
func (q *queue) okSpawn() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		<-q.ch
	}()
}

func (q *queue) allowedSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lint:allow lockscope -- fixture: the channel is buffered to queue depth, this send cannot park
	q.ch <- v
}
