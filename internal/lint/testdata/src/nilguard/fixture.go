// Fixture for the nilguard analyzer; the test runs it under the
// import path tasterschoice/internal/obs.
package fixture

type Counter struct{ n int64 }

// Inc has the canonical guard.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add's guard is ||-joined with a cheap argument check — accepted.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.n += n
}

// Value forgets the guard.
func (c *Counter) Value() int64 { // want "no leading nil guard"
	return c.n
}

// Reset guards on the second statement — too late, the first
// dereference has already happened.
func (c *Counter) Reset() { // want "no leading nil guard"
	c.n = 0
	if c == nil {
		return
	}
}

// Snapshot has a value receiver: a nil pointer cannot reach it as a
// method value through the instrument pattern.
func (c Counter) Snapshot() int64 { return c.n }

// reset is unexported: not part of the instrument API.
func (c *Counter) reset() { c.n = 0 }

// Kind never names its receiver, so it cannot dereference it.
func (*Counter) Kind() string { return "counter" }

//lint:allow nilguard -- fixture: handle type, never nil by construction
func (c *Counter) MustValue() int64 {
	return c.n
}
