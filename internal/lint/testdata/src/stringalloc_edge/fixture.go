// Fixture proving the stringalloc classification gate: the same
// per-iteration string building that fails in an engine package is
// legal in an edge package (tasterschoice/internal/dnsbl), where
// wire-format rendering is the job.
package fixture

import "fmt"

func okEdgeSprintf(domains []string) []string {
	queries := make([]string, 0, len(domains))
	for _, d := range domains {
		queries = append(queries, fmt.Sprintf("%s.bl.example.net", d))
	}
	return queries
}

func okEdgeConcat(domains []string) string {
	out := ""
	for _, d := range domains {
		out += d + "\n"
	}
	return out
}
