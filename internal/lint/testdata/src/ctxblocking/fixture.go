// Fixture for the ctxblocking analyzer; the test runs it under the
// import path tasterschoice/internal/smtpd.
package fixture

import (
	"context"
	"net"
)

// DialFeed blocks with no context and no DialFeedContext variant.
func DialFeed(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "blocks on net.Dial"
}

// Wait parks on a channel with no escape hatch.
func Wait(done chan struct{}) {
	<-done // want "blocks on a channel receive"
}

// Push blocks on a send.
func Push(ch chan<- int, v int) {
	ch <- v // want "blocks on a channel send"
}

// Consume blocks ranging over a channel.
func Consume(ch <-chan int) (sum int) {
	for v := range ch { // want "ranging over a channel"
		sum += v
	}
	return sum
}

// TryPush uses select: cancellable/non-blocking by construction.
func TryPush(ch chan<- int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// Connect is fine: the ConnectContext sibling exists.
func Connect(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// ConnectContext is itself fine: it takes the context.
func ConnectContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Stream takes a context, so blocking is caller-boundable.
func Stream(ctx context.Context, ch <-chan int) int {
	return <-ch
}

type Server struct{ done chan struct{} }

// Close may block: the Shutdown(ctx) sibling is its context variant
// by convention.
func (s *Server) Close() error {
	<-s.done
	return nil
}

func (s *Server) Shutdown(ctx context.Context) error { return nil }

// Drain has no variant.
func (s *Server) Drain() {
	<-s.done // want "blocks on a channel receive"
}

// spawn is unexported: internal plumbing may block.
func spawn(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// Background only blocks inside a goroutine — the caller returns
// immediately.
func Background(addr string) {
	go func() {
		c, _ := net.Dial("tcp", addr)
		if c != nil {
			c.Close()
		}
	}()
}

// Allowed documents a deliberate exception.
func Allowed(ch <-chan int) int {
	return <-ch //lint:allow ctxblocking -- fixture: lifetime bounded by the caller closing ch
}
