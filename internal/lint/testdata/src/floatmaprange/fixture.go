// Fixture for the floatmaprange analyzer; the test runs it under the
// deterministic import path tasterschoice/internal/report.
package fixture

// dist mirrors stats.Dist — the map type whose unsorted summation was
// the PR-3 nondeterminism bug.
type dist map[string]float64

// mapOrderSum is the PR-3 bug pattern verbatim: map-order float
// accumulation.
func mapOrderSum(d dist) float64 {
	sum := 0.0
	for _, v := range d {
		sum += v // want "float accumulation into sum in map-iteration order"
	}
	return sum
}

// spelledOut catches the x = x + v spelling too.
func spelledOut(d dist) float64 {
	total := 0.0
	for k := range d {
		total = total + d[k] // want "float accumulation into total"
	}
	return total
}

// fieldTarget accumulates into a struct field declared outside the
// loop.
func fieldTarget(d dist) float64 {
	var row struct{ Revenue float64 }
	for _, v := range d {
		row.Revenue += v // want "float accumulation into row.Revenue"
	}
	return row.Revenue
}

// sortedIdiom is the sanctioned fix: range over a sorted key slice.
func sortedIdiom(d dist, sortedKeys []string) float64 {
	sum := 0.0
	for _, k := range sortedKeys {
		sum += d[k]
	}
	return sum
}

// intAccumulation is exact arithmetic; order cannot change the result.
func intAccumulation(counts map[string]int64) int64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// perIterationLocal's accumulator is fresh each iteration, so each
// key's sum is order-independent.
func perIterationLocal(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
}

// allowed demonstrates a reasoned suppression.
func allowed(d dist) float64 {
	sum := 0.0
	for _, v := range d {
		sum += v //lint:allow floatmaprange -- fixture: values are exact powers of two, order-independent
	}
	return sum
}
