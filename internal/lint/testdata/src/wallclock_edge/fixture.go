// Fixture proving the classification gate: identical wall-clock usage
// is legal when the package classifies as edge (the test runs this
// under tasterschoice/internal/dnsbl). No // want comments: zero
// diagnostics expected.
package fixture

import "time"

func deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}

func backoff() {
	time.Sleep(time.Millisecond)
}
