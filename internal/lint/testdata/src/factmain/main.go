// Fixture engine package for the cross-package fact tests: poses as
// tasterschoice/internal/dnsblplane and imports the factdep fixture
// (posing as feedsync). Every finding here rests on a fact computed
// in the other package and carried across through the shared store —
// the same channel the vetx files ride under go vet -vettool.
package fixture

import (
	"sync"
	"sync/atomic"

	factdep "tasterschoice/internal/feedsync"
)

type snapshot struct {
	entries map[string]int
}

type plane struct {
	mu  sync.Mutex
	cur atomic.Pointer[snapshot]
}

// Wallclock escalation: SlowNow reads time.Now legally at the edge;
// calling it from engine code is the contract gap.
func stamp() int64 {
	return factdep.SlowNow().UnixNano() // want "factdep.SlowNow transitively reads the wall clock"
}

// ...and through one more level of helper indirection.
func jittered() int64 {
	return int64(factdep.Jitter()) // want "factdep.Jitter transitively reads the wall clock"
}

// Globalrand escalation: Pick is a finding in its own package too,
// but the engine caller gets its own, at the call site.
func pick() int {
	return factdep.Pick(8) // want "factdep.Pick transitively draws from the process-global math/rand state"
}

// Lockscope through the boundary: Fetch's Blocking fact crossed over.
func (p *plane) badFetchUnderLock(ch chan int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return factdep.Fetch(ch) // want "call to factdep.Fetch, which can block while holding p.mu"
}

// Publishedmut through the boundary: Scrub's mutation mask crossed
// over, so handing it published structure is caught.
func (p *plane) badScrubAfterPublish(next *snapshot) {
	p.cur.Store(next)
	factdep.Scrub(next.entries) // want "next escapes to factdep.Scrub, which writes through it"
}

// Goroleak through the boundary: Run's Tracked fact (a WaitGroup.Done
// two hops away in another package) is why this spawn is clean.
func okCrossTracked(pump *factdep.Pump) {
	pump.Start()
	go pump.Run()
}

// An allow at the engine call site cleanses the chain: no finding
// here, and none for callers of sanctionedNow either.
func sanctionedNow() int64 {
	//lint:allow wallclock -- fixture: measures real latency for an obs histogram only
	return factdep.SlowNow().UnixNano()
}

func callerOfSanctioned() int64 { return sanctionedNow() }
