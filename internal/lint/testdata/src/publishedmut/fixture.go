// Fixture for the publishedmut analyzer; the test runs it under the
// engine import path tasterschoice/internal/dnsblplane. The bad cases
// reintroduce the shape of the historical dnsblplane bug: a snapshot
// mutated after atomic.Pointer.Store had already published it to
// concurrent readers.
package fixture

import "sync/atomic"

type snapshot struct {
	serial  int
	entries map[string]int
	order   []string
}

type shard struct {
	cur atomic.Pointer[snapshot]
}

// badDirect is the reintroduced historical bug: the apply path once
// bumped the serial on the snapshot it had already published, racing
// every lock-free reader.
func badDirect(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	next.serial++ // want "write to next after it was published"
}

func badField(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	next.entries["a"] = 1 // want "write to next after it was published"
}

func badSliceField(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	next.order = append(next.order, "x") // want "write to next after it was published"
}

// badAlias shows the freeze following a local alias of published
// structure.
func badAlias(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	m := next.entries
	m["a"] = 1 // want "write to next after it was published"
}

func badDelete(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	delete(next.entries, "a") // want "delete from next after it was published"
}

// badCAS: CompareAndSwap publishes its new-value argument just like
// Store does.
func badCAS(sh *shard, old, next *snapshot) {
	if sh.cur.CompareAndSwap(old, next) {
		next.serial = 2 // want "write to next after it was published"
	}
}

// scrub writes through its parameter; the analyzer learns that from
// its mutation mask, not from the call site.
func scrub(s *snapshot) {
	s.serial = 0
}

func badHelper(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	scrub(next) // want "next escapes to fixture.scrub, which writes through it"
}

func (s *snapshot) bump() { s.serial++ }

func badMethod(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	next.bump() // want "next escapes to fixture.snapshot.bump, which writes through it"
}

// badClosure: a goroutine capturing the published snapshot mutates it
// strictly after publication.
func badClosure(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	go func() {
		next.serial++ // want "write to next after it was published"
	}()
}

// okBuildThenPublish is the sanctioned shape: build fully, publish
// last, never touch again.
func okBuildThenPublish(sh *shard, src map[string]int) {
	next := &snapshot{entries: make(map[string]int, len(src))}
	for k, v := range src {
		next.entries[k] = v
	}
	next.serial = 1
	sh.cur.Store(next)
}

// okRebind: rebinding the name to a fresh value thaws it — the new
// value is unpublished.
func okRebind(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	next = &snapshot{}
	next.serial = 1
	sh.cur.Store(next)
}

// okRead: reading published state is the whole point of RCU.
func okRead(sh *shard, next *snapshot) int {
	sh.cur.Store(next)
	return next.serial
}

// okInspect: passing the published value to a non-mutating helper is
// fine — inspect's mutation mask is empty.
func inspect(s *snapshot) int { return s.serial }

func okInspect(sh *shard, next *snapshot) int {
	sh.cur.Store(next)
	return inspect(next)
}

// allowed documents a deliberate write-after-store (the symtab page
// pattern, where a later fence does the real publish).
func allowed(sh *shard, next *snapshot) {
	sh.cur.Store(next)
	//lint:allow publishedmut -- fixture: slot is published by a later fence, mirroring symtab's n.Store
	next.serial++
}
