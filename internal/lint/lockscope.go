package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope forbids blocking while holding a mutex in engine and
// deterministic packages. A channel park, a net dial, a WaitGroup.Wait
// or a call into a helper that does any of those between mu.Lock() and
// mu.Unlock() turns one slow peer into a plane-wide stall: every other
// goroutine needing the lock convoys behind the blocked holder. The
// overload queue's shape — unlock, then park on the channel, then
// relock — is the sanctioned pattern.
//
// The check is interprocedural through the fact store: a call to a
// local helper or an already-analyzed internal package's function that
// carries the Blocking fact is a finding just like a literal channel
// receive. sync.Cond.Wait is exempt (it releases the mutex while
// parked); select statements with a default case never block.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "forbid blocking operations (channel send/recv, net I/O, Wait, blocking helpers) " +
		"while a sync.Mutex/RWMutex is held in engine packages; unlock before parking",
	Run: runLockScope,
}

func runLockScope(pass *Pass) error {
	if Classify(pass.Pkg.Path()) < ClassEngine {
		return nil
	}
	if pass.Inter == nil {
		return nil
	}
	for _, node := range pass.Inter.Graph.Nodes() {
		if node.Decl != nil && node.Body != nil {
			checkLockScopes(pass, node.Body)
		}
	}
	return nil
}

// mutexMethod classifies a call on a sync.Mutex/RWMutex: it returns
// the lock path key (the dotted receiver expression, "s.mu"), the
// method name, and ok. Non-mutex calls and receivers too complex to
// key (index expressions, call results) return !ok — an unkeyable lock
// is simply not tracked, which under-reports rather than misfires.
func mutexMethod(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	rt := recvType(fn)
	if rt == nil {
		return "", "", false
	}
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	key = exprPath(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, fn.Name(), true
}

// exprPath renders a pure selector chain ("s.mu", "sh.state.mu") for
// lock identity, or "" when the expression involves calls, indexes or
// anything else whose identity a string cannot carry.
func exprPath(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := exprPath(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.StarExpr:
		return exprPath(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return exprPath(v.X)
		}
	}
	return ""
}

// checkLockScopes walks one declared function body in source order,
// tracking which mutexes are held, and reports blocking operations
// inside a held region.
func checkLockScopes(pass *Pass, body *ast.BlockStmt) {
	held := make(map[string]token.Pos) // lock key -> Lock() position

	report := func(pos token.Pos, what string) {
		// One finding per site, named for the first-sorted held lock
		// so output is deterministic when several are held.
		var key string
		for k := range held {
			if key == "" || k < key {
				key = k
			}
		}
		if key == "" {
			return
		}
		pass.Report(Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("%s while holding %s; blocking under a lock convoys every other "+
				"goroutine needing it — unlock before parking (see overload.Queue.PopContext)", what, key),
		})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// The literal runs on its own stack at its own time; its
			// body gets a fresh held set via its own scan only when
			// invoked synchronously — conservatively skip.
			return false
		case *ast.SelectStmt:
			// select {..., default:} polls; without default it parks.
			hasDefault := false
			for _, cl := range v.Body.List {
				if cc, isComm := cl.(*ast.CommClause); isComm && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && len(held) > 0 {
				report(v.Pos(), "select with no default case parks")
			}
			// Case bodies execute with the lock still held.
			for _, cl := range v.Body.List {
				if cc, isComm := cl.(*ast.CommClause); isComm {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				report(v.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && len(held) > 0 {
				report(v.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if len(held) > 0 {
				if t := pass.Info.TypeOf(v.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(v.Pos(), "ranging over a channel")
					}
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() scopes the lock to the whole function:
			// the region never closes during this walk, which is the
			// point — everything after the Lock runs under it.
			return false
		case *ast.CallExpr:
			if key, method, isMutex := mutexMethod(pass.Info, v); isMutex {
				switch method {
				case "Lock", "RLock":
					held[key] = v.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return false
			}
			if len(held) == 0 {
				return true
			}
			if what := blockingNetCall(pass.Info, v); what != "" {
				report(v.Pos(), what)
				return true
			}
			if sm := syncMethod(pass.Info, v); sm != "" {
				if sm == "WaitGroup.Wait" {
					report(v.Pos(), "sync.WaitGroup.Wait")
				}
				// Cond.Wait releases the mutex while parked: exempt.
				return true
			}
			// Interprocedural: a call to a function whose computed
			// facts say it can block its caller.
			if callee := ResolveCallee(pass.Info, v.Fun); callee != nil {
				if pass.Inter.FactsFor(callee).Set.Has(FactBlocking) {
					pkgName := ""
					if callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
						pkgName = callee.Pkg().Name() + "."
					}
					report(v.Pos(), fmt.Sprintf("call to %s%s, which can block", pkgName, ObjectKey(callee)))
				}
			}
		}
		return true
	}
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
}
