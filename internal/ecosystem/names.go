package ecosystem

import (
	"fmt"

	"tasterschoice/internal/domain"
	"tasterschoice/internal/randutil"
)

// Word lists used to synthesize plausible domain and program names.
// Purely cosmetic, but keeping generated names realistic exercises the
// same parsing paths real feed data would.
var (
	spamWordsA = []string{
		"cheap", "best", "super", "mega", "quick", "easy", "top", "fast",
		"prime", "gold", "vip", "pro", "ultra", "star", "great", "real",
		"true", "fresh", "smart", "happy", "lucky", "royal", "grand",
		"secure", "direct", "global", "instant", "magic", "power", "elite",
	}
	spamWordsB = []string{
		"pills", "meds", "pharm", "rx", "drugs", "tabs", "health", "cure",
		"watches", "replica", "bags", "luxury", "brands", "soft", "oem",
		"apps", "deals", "shop", "store", "market", "sale", "offers",
		"goods", "mall", "outlet", "boutique", "supply", "depot", "express",
	}
	benignWords = []string{
		"news", "blog", "mail", "search", "photo", "video", "music",
		"travel", "bank", "weather", "sports", "games", "forum", "wiki",
		"social", "cloud", "code", "docs", "maps", "books", "movies",
		"recipes", "garden", "auto", "craft", "school", "science", "art",
		"city", "home", "work", "life", "tech", "media", "press", "daily",
	}
	programAdjectives = []string{
		"Canadian", "Euro", "Global", "Royal", "Swiss", "Pacific", "Prime",
		"United", "Diamond", "Golden", "Silver", "Atlantic", "Eastern",
		"Northern", "Imperial", "Classic", "Modern", "Alpha", "Omega",
	}
	programNouns = map[Category][]string{
		CategoryPharma:   {"Pharmacy", "Health", "Meds", "RX Partners", "Drugstore", "Pills Network", "Care", "Remedy"},
		CategoryReplica:  {"Replica House", "Watch Works", "Luxury Line", "Timepieces", "Boutique Club", "Leather Co"},
		CategorySoftware: {"Soft Sales", "OEM Store", "License Depot", "Software Hub", "App Vault"},
	}
	spamTLDs        = []string{"com", "net", "org", "info", "biz", "ru", "cn", "in"}
	spamTLDWeights  = []float64{0.56, 0.10, 0.07, 0.08, 0.03, 0.09, 0.04, 0.03}
	benignTLDs      = []string{"com", "org", "net", "edu", "gov", "co.uk", "de", "fr"}
	benignTLDWeight = []float64{0.55, 0.15, 0.12, 0.05, 0.02, 0.05, 0.03, 0.03}
)

// nameGen produces unique domain names of various flavors.
type nameGen struct {
	rng       *randutil.RNG
	spamTLD   *randutil.WeightedChoice
	benignTLD *randutil.WeightedChoice
	used      map[domain.Name]bool
}

func newNameGen(rng *randutil.RNG) *nameGen {
	return &nameGen{
		rng:       rng,
		spamTLD:   randutil.NewWeightedChoice(rng.SplitNamed("spamtld"), spamTLDWeights),
		benignTLD: randutil.NewWeightedChoice(rng.SplitNamed("benigntld"), benignTLDWeight),
		used:      make(map[domain.Name]bool),
	}
}

// unique retries gen until it produces an unused name.
func (g *nameGen) unique(gen func() domain.Name) domain.Name {
	for i := 0; ; i++ {
		d := gen()
		if !g.used[d] {
			g.used[d] = true
			return d
		}
		if i > 10000 {
			panic("ecosystem: name space exhausted")
		}
	}
}

// Spam returns a fresh spammy-looking registered domain:
// word+word+optional digits over a spam-weighted TLD mix.
func (g *nameGen) Spam() domain.Name {
	return g.unique(func() domain.Name {
		a := spamWordsA[g.rng.Intn(len(spamWordsA))]
		b := spamWordsB[g.rng.Intn(len(spamWordsB))]
		suffix := ""
		if g.rng.Bool(0.65) {
			suffix = fmt.Sprintf("%d", g.rng.Intn(1000))
		}
		tld := spamTLDs[g.spamTLD.Pick()]
		return domain.Name(a + b + suffix + "." + tld)
	})
}

// Benign returns a fresh legitimate-looking domain.
func (g *nameGen) Benign() domain.Name {
	return g.unique(func() domain.Name {
		a := benignWords[g.rng.Intn(len(benignWords))]
		b := benignWords[g.rng.Intn(len(benignWords))]
		name := a + b
		if g.rng.Bool(0.3) {
			name = a + "-" + b
		}
		if g.rng.Bool(0.25) {
			name += fmt.Sprintf("%d", g.rng.Intn(100))
		}
		tld := benignTLDs[g.benignTLD.Pick()]
		return domain.Name(name + "." + tld)
	})
}

// Obscure returns a fresh random-string registered domain — the kind a
// random generator can collide with.
func (g *nameGen) Obscure() domain.Name {
	return g.unique(func() domain.Name {
		return domain.Name(g.rng.AlphaNum(6+g.rng.Intn(6)) + ".com")
	})
}

// programName synthesizes an affiliate program name.
func programName(rng *randutil.RNG, cat Category, idx int) string {
	nouns := programNouns[cat]
	adj := programAdjectives[rng.Intn(len(programAdjectives))]
	noun := nouns[rng.Intn(len(nouns))]
	return fmt.Sprintf("%s %s #%d", adj, noun, idx)
}

// botnetNames are flavor names for the simulated botnets; the first is
// the Rustock-like poisoner.
var botnetNames = []string{
	"rustwork", "megadrive", "stormline", "cutwheel", "grumbot",
	"lethovic", "bagelnet", "xarvester", "donbot", "festeron",
	"waledoc", "bobaxen", "kelihorse", "ozdocker", "spamthru",
	"srizbee", "ghegnet", "maazben", "asprox", "darkmail",
	"nucrypt", "wopla", "chegern", "tofsee", "slenfbot",
	"vulcanbot", "firebird", "hydranet", "coldriver", "nightowl",
}
