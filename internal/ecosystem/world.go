package ecosystem

import (
	"fmt"
	"strconv"
	"strings"

	"tasterschoice/internal/dnszone"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/simclock"
	"tasterschoice/internal/symtab"
)

// DomainKind classifies what a domain actually is, ground truth the
// crawler discovers (or fails to).
type DomainKind uint8

const (
	// KindUnknown is a domain the world knows nothing about — poison
	// output and junk reports resolve to this.
	KindUnknown DomainKind = iota
	// KindStorefront is a registered domain hosting a program
	// storefront (or unbranded goods site for other-goods spam).
	KindStorefront
	// KindLanding is a registered throwaway domain redirecting to a
	// storefront.
	KindLanding
	// KindWebOnly is a domain advertised via web/search spam only.
	KindWebOnly
	// KindBenign is a legitimate domain.
	KindBenign
	// KindObscure is a registered but unpopular legitimate domain,
	// the kind random name generation occasionally collides with.
	KindObscure
)

// String returns the kind name.
func (k DomainKind) String() string {
	switch k {
	case KindStorefront:
		return "storefront"
	case KindLanding:
		return "landing"
	case KindWebOnly:
		return "webonly"
	case KindBenign:
		return "benign"
	case KindObscure:
		return "obscure"
	default:
		return "unknown"
	}
}

// DomainInfo is the world's ground truth about one domain.
type DomainInfo struct {
	Kind      DomainKind
	Campaign  int // Campaign.ID, -1 if none
	Program   int // Program.ID, -1 if none
	Affiliate int // Affiliate.ID, -1 if none
	Category  Category
	// Alive reports whether an HTTP fetch during the measurement
	// period succeeds.
	Alive bool
	// Registered reports whether the domain was ever registered.
	Registered bool
	// Alexa, ODP and Redirector mirror the benign-universe flags.
	Alexa, ODP, Redirector bool
	// BenignRank is the popularity rank for benign domains, -1
	// otherwise.
	BenignRank int
}

// World is a fully generated spam ecosystem.
type World struct {
	Config     Config
	Programs   []Program
	Affiliates []Affiliate
	Botnets    []Botnet
	Campaigns  []Campaign
	Benign     []BenignDomain
	// Obscure is the pool of registered-but-unpopular domains poison
	// names can collide with.
	Obscure []domain.Name
	// ObscureSyms holds the interned IDs of Obscure, index-aligned.
	ObscureSyms []symtab.ID
	// Registry records all domain registrations for zone-file checks.
	Registry *dnszone.Registry

	// Syms is the world's shared symbol table: every generated domain
	// and advertised URL is interned here (EnsureSyms), and the
	// collection engine threads the IDs end-to-end so per-message code
	// never re-hashes a string. Engines also intern their synthesized
	// junk/poison names into it, always from serial code, keeping ID
	// assignment deterministic for every worker count.
	Syms *symtab.Table

	index       map[domain.Name]*DomainInfo
	redirectors []domain.Name
}

// EnsureSyms interns every generated domain (and derived URL) into
// w.Syms in a fixed order: benign, obscure, then campaign slots. It is
// idempotent; Generate calls it, and engines call it again to cover
// hand-assembled test worlds.
func (w *World) EnsureSyms() {
	if w.Syms != nil {
		return
	}
	tab := symtab.New()
	for i := range w.Benign {
		b := &w.Benign[i]
		b.Sym = tab.Intern(string(b.Name))
		b.URLSym = tab.AutoURL(b.Sym)
	}
	w.ObscureSyms = make([]symtab.ID, len(w.Obscure))
	for i, d := range w.Obscure {
		w.ObscureSyms[i] = tab.Intern(string(d))
	}
	for ci := range w.Campaigns {
		c := &w.Campaigns[ci]
		for si := range c.Domains {
			slot := &c.Domains[si]
			slot.Sym = tab.Intern(string(slot.Name))
			slot.URLSym = tab.Intern(AdURL(c, *slot))
		}
	}
	w.Syms = tab
}

// Info returns ground truth for a domain. ok is false for names the
// world has never heard of (poison output, junk).
func (w *World) Info(d domain.Name) (*DomainInfo, bool) {
	info, ok := w.index[d]
	return info, ok
}

// Redirectors returns the benign domains offering redirection services.
func (w *World) Redirectors() []domain.Name { return w.redirectors }

// RXProgram returns the RX-Promotion-like program.
func (w *World) RXProgram() *Program {
	for i := range w.Programs {
		if w.Programs[i].RX {
			return &w.Programs[i]
		}
	}
	return nil
}

// PoisonWindow returns the period during which the poisoner botnet
// sends random unregistered domains.
func (w *World) PoisonWindow() simclock.Window {
	return simclock.Window{
		Start: w.Config.Window.Day(w.Config.PoisonStartDay),
		End:   w.Config.Window.Day(w.Config.PoisonEndDay),
	}
}

// Poisoner returns the poisoning botnet, or nil if none.
func (w *World) Poisoner() *Botnet {
	for i := range w.Botnets {
		if w.Botnets[i].Poisoner {
			return &w.Botnets[i]
		}
	}
	return nil
}

// TaggedUniverse returns the number of domains whose crawl would yield
// a storefront tag (alive, tagged category, not benign) — a generation
// sanity metric used by tests.
func (w *World) TaggedUniverse() int {
	n := 0
	for _, info := range w.index {
		if info.Alive && info.Category.Tagged() && info.Program >= 0 &&
			(info.Kind == KindStorefront || info.Kind == KindLanding) {
			n++
		}
	}
	return n
}

// AdURL builds the spam-advertised URL for an ad slot of a campaign.
// The path carries the campaign id so the crawler can resolve
// redirections the way real crawlers follow HTTP redirects.
func AdURL(c *Campaign, d AdDomain) string {
	if d.Redirector {
		return fmt.Sprintf("http://%s/r/c%d", d.Name, c.ID)
	}
	return fmt.Sprintf("http://%s/p/c%d", d.Name, c.ID)
}

// ChaffURL builds a URL on a benign domain as embedded by spammers to
// dilute filters (image hosting, DTD references, phished brands).
func ChaffURL(d domain.Name) string {
	return fmt.Sprintf("http://%s/", d)
}

// DecodeCampaignToken extracts a campaign id from an ad URL path. ok is
// false if the URL carries no campaign token.
func DecodeCampaignToken(rawURL string) (id int, redirect bool, ok bool) {
	path := rawURL
	if i := strings.Index(path, "://"); i >= 0 {
		path = path[i+3:]
	}
	slash := strings.IndexByte(path, '/')
	if slash < 0 {
		return 0, false, false
	}
	path = path[slash:]
	var prefix string
	switch {
	case strings.HasPrefix(path, "/r/c"):
		prefix, redirect = "/r/c", true
	case strings.HasPrefix(path, "/p/c"):
		prefix = "/p/c"
	default:
		return 0, false, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(path, prefix))
	if err != nil || n < 0 {
		return 0, false, false
	}
	return n, redirect, true
}
