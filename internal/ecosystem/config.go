package ecosystem

import (
	"fmt"

	"tasterschoice/internal/simclock"
)

// Config controls ecosystem generation. The zero value is not usable;
// start from DefaultConfig.
//
// The default scenario is scaled roughly 1:1000 in message volume and
// 1:50 in domain counts relative to the paper's feeds, so a full
// three-month simulation plus all analyses runs in seconds. Scale
// multiplies campaign counts and volumes for smaller (tests) or larger
// runs.
type Config struct {
	// Seed drives all generation; equal seeds give identical worlds.
	Seed uint64
	// Window is the measurement period.
	Window simclock.Window
	// Scale multiplies campaign counts and volumes. 1.0 is the
	// default scenario; tests use smaller values.
	Scale float64

	// Affiliate program structure.
	PharmaPrograms   int // number of pharmacy programs (first is RX)
	ReplicaPrograms  int
	SoftwarePrograms int
	// RXAffiliates is the number of affiliates in the RX program; the
	// paper identified 846 distinct RX-Promotion affiliate IDs.
	RXAffiliates int
	// OtherAffiliatesMean is the mean affiliate count per non-RX
	// program.
	OtherAffiliatesMean float64
	// RXLoudAffiliates is how many RX affiliates advertise through
	// botnets; the paper's honeypot feeds see only ~20 RX affiliates.
	RXLoudAffiliates int
	// QuietAffiliateFrac is the fraction of each program's affiliates
	// (by descending revenue) that run quiet targeted campaigns. The
	// rest, minus the loud ones, run tiny campaigns.
	QuietAffiliateFrac float64

	// Affiliate revenue model (annual USD, Pareto).
	RevenueMin   float64
	RevenueAlpha float64

	// Botnets.
	Botnets          int
	MonitoredBotnets int
	// BotnetAffiliatesMean is the mean roster size (operator plus
	// renter affiliates) per botnet.
	BotnetAffiliatesMean float64

	// Campaign counts at Scale = 1.
	// QuietCampaignProb is the probability a quiet-tier affiliate
	// runs at least one campaign during the window; QuietExtraMean is
	// the expected number of additional campaigns (Poisson).
	QuietCampaignProb float64
	QuietExtraMean    float64
	// TinyCampaignProb is the probability a tiny-tier affiliate runs
	// a campaign during the window.
	TinyCampaignProb float64
	// LoudCampaignsPerSlot is the expected number of campaigns each
	// botnet-roster affiliate launches during the window.
	LoudCampaignsPerSlot float64
	// MegaCampaigns is the number of months-long, very high-volume
	// botnet campaigns (the Rustock-style continuous pharma blasts
	// that dominate global spam volume). Their domains persist after
	// rotation, so a short oracle window still samples them — the
	// property behind the paper's low mx2-vs-Mail variation distance.
	MegaCampaigns int
	// MegaVolumeMultiplier scales LoudVolumeMedian for mega
	// campaigns; MegaMinDays/MegaMaxDays bound their duration.
	MegaVolumeMultiplier float64
	MegaMinDays          float64
	MegaMaxDays          float64
	// MegaDomainsMean is the mean rotated-domain count per mega
	// campaign.
	MegaDomainsMean float64
	// OtherGoodsCampaigns is the number of untagged-goods e-mail
	// campaigns (sites live, no storefront signature).
	OtherGoodsCampaigns int
	// OtherGoodsLoudFrac is the fraction of other-goods campaigns
	// sent loudly through botnets.
	OtherGoodsLoudFrac float64
	// WebOnlyDomains is the number of domains advertised only via
	// web/search spam (reaching only the hybrid feed).
	WebOnlyDomains int
	// WebOnlyTaggedFrac is the fraction of web-only domains that are
	// genuine program storefronts advertised through search spam —
	// the hybrid feed's exclusive tagged contribution.
	WebOnlyTaggedFrac float64

	// Campaign volume models (log-normal, nominal messages at
	// Scale = 1).
	LoudVolumeMedian  float64
	LoudVolumeSigma   float64
	QuietVolumeMedian float64
	QuietVolumeSigma  float64
	TinyVolumeMedian  float64
	TinyVolumeSigma   float64
	OtherVolumeMedian float64
	OtherVolumeSigma  float64

	// Domain rotation.
	LoudDomainsMean  float64 // mean rotated domains per loud campaign
	QuietDomainsMean float64
	// RedirectorAdFrac is the fraction of loud ad slots abusing a
	// benign redirection service instead of a registered domain.
	RedirectorAdFrac float64
	// LandingAdFrac is the fraction of ad slots using a dedicated
	// landing domain that redirects to the storefront.
	LandingAdFrac float64

	// Liveness at crawl time, per class.
	LoudAliveProb    float64
	QuietAliveProb   float64
	TinyAliveProb    float64
	OtherAliveProb   float64
	WebOnlyAliveProb float64
	// WebOnlyRegisteredProb is the fraction of web-only spam domains
	// that are actually registered (web-spam feeds carry junk).
	WebOnlyRegisteredProb float64

	// Benign universe.
	BenignDomains int
	AlexaTopN     int // top-ranked benign domains flagged as Alexa
	ODPDomains    int // benign domains flagged as ODP listings
	Redirectors   int // popular benign domains offering redirection
	// ObscureRegistered is a pool of registered but unpopular
	// domains; random-looking poison names occasionally collide with
	// these (the Bot feed's exclusive live domains).
	ObscureRegistered int

	// Poisoning (the Rustock episode): the poisoner botnet emits
	// random unregistered domains between the two day offsets.
	PoisonStartDay int
	PoisonEndDay   int
}

// DefaultConfig returns the default scenario for the given seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:   seed,
		Window: simclock.PaperWindow(),
		Scale:  1.0,

		PharmaPrograms:      29,
		ReplicaPrograms:     10,
		SoftwarePrograms:    6,
		RXAffiliates:        846,
		OtherAffiliatesMean: 25,
		RXLoudAffiliates:    26,
		QuietAffiliateFrac:  0.42,

		RevenueMin:   1500,
		RevenueAlpha: 1.15,

		Botnets:              30,
		MonitoredBotnets:     4,
		BotnetAffiliatesMean: 4.5,

		QuietCampaignProb:    0.97,
		QuietExtraMean:       0.25,
		TinyCampaignProb:     0.97,
		LoudCampaignsPerSlot: 2.4,
		MegaCampaigns:        3,
		MegaVolumeMultiplier: 500,
		MegaMinDays:          55,
		MegaMaxDays:          88,
		MegaDomainsMean:      10,
		OtherGoodsCampaigns:  5200,
		OtherGoodsLoudFrac:   0.06,
		WebOnlyDomains:       7000,
		WebOnlyTaggedFrac:    0.012,

		LoudVolumeMedian:  30000,
		LoudVolumeSigma:   1.0,
		QuietVolumeMedian: 1100,
		QuietVolumeSigma:  0.8,
		TinyVolumeMedian:  160,
		TinyVolumeSigma:   0.6,
		OtherVolumeMedian: 220,
		OtherVolumeSigma:  0.9,

		LoudDomainsMean:  3.0,
		QuietDomainsMean: 1.3,
		RedirectorAdFrac: 0.02,
		LandingAdFrac:    0.10,

		LoudAliveProb:    0.88,
		QuietAliveProb:   0.72,
		TinyAliveProb:    0.55,
		OtherAliveProb:   0.55,
		WebOnlyAliveProb: 0.62,

		WebOnlyRegisteredProb: 0.72,

		BenignDomains: 20000,
		AlexaTopN:     8000,
		ODPDomains:    4000,
		Redirectors:   30,

		ObscureRegistered: 3000,

		PoisonStartDay: 24,
		PoisonEndDay:   45,
	}
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	switch {
	case c.Window.Duration() <= 0:
		return fmt.Errorf("ecosystem: empty window")
	case c.Scale <= 0:
		return fmt.Errorf("ecosystem: Scale must be positive, got %g", c.Scale)
	case c.PharmaPrograms < 1:
		return fmt.Errorf("ecosystem: need at least one pharma program (the RX program)")
	case c.RXAffiliates < 1:
		return fmt.Errorf("ecosystem: need at least one RX affiliate")
	case c.RXLoudAffiliates > c.RXAffiliates:
		return fmt.Errorf("ecosystem: RXLoudAffiliates %d exceeds RXAffiliates %d",
			c.RXLoudAffiliates, c.RXAffiliates)
	case c.MonitoredBotnets > c.Botnets:
		return fmt.Errorf("ecosystem: MonitoredBotnets %d exceeds Botnets %d",
			c.MonitoredBotnets, c.Botnets)
	case c.Botnets < 1:
		return fmt.Errorf("ecosystem: need at least one botnet")
	case c.QuietAffiliateFrac < 0 || c.QuietAffiliateFrac > 1:
		return fmt.Errorf("ecosystem: QuietAffiliateFrac out of [0,1]")
	case c.AlexaTopN > c.BenignDomains:
		return fmt.Errorf("ecosystem: AlexaTopN %d exceeds BenignDomains %d",
			c.AlexaTopN, c.BenignDomains)
	case c.ODPDomains > c.BenignDomains:
		return fmt.Errorf("ecosystem: ODPDomains %d exceeds BenignDomains %d",
			c.ODPDomains, c.BenignDomains)
	case c.Redirectors > c.BenignDomains:
		return fmt.Errorf("ecosystem: Redirectors %d exceeds BenignDomains %d",
			c.Redirectors, c.BenignDomains)
	case c.PoisonEndDay < c.PoisonStartDay:
		return fmt.Errorf("ecosystem: poison window inverted")
	}
	return nil
}

// scaled multiplies a count by the scale factor, keeping at least min.
func (c *Config) scaled(n int, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}
