package ecosystem

import (
	"sort"

	"tasterschoice/internal/domain"
)

// DomainWeight pairs a domain with its share of query volume.
type DomainWeight struct {
	Name   domain.Name
	Weight float64
}

// LoudCampaignSkew returns the world's loud-campaign advertised
// domains weighted by campaign volume times slot weight, sorted by
// descending weight (names break ties so the order is deterministic).
// This is the query-mix skew a resolver population hammering a DNSBL
// exhibits: a handful of botnet-blasted campaign domains dominate the
// lookup stream the way they dominate spam volume, with a long tail
// of quieter campaigns behind them. dnsblblast draws its weighted
// query mix from this.
func (w *World) LoudCampaignSkew() []DomainWeight {
	var out []DomainWeight
	for ci := range w.Campaigns {
		c := &w.Campaigns[ci]
		if c.Class != ClassLoud {
			continue
		}
		for di := range c.Domains {
			d := &c.Domains[di]
			out = append(out, DomainWeight{Name: d.Name, Weight: c.Volume * d.Weight})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Name < out[j].Name
	})
	return out
}
