package ecosystem

import (
	"reflect"
	"testing"
)

func TestLoudCampaignSkew(t *testing.T) {
	world, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	skew := world.LoudCampaignSkew()
	if len(skew) == 0 {
		t.Fatal("no loud-campaign domains in the default world")
	}

	// Every entry names a loud-campaign advertised domain with positive
	// weight, and the order is strictly descending (names break ties).
	for i, dw := range skew {
		if dw.Weight <= 0 {
			t.Fatalf("entry %d (%s): non-positive weight %v", i, dw.Name, dw.Weight)
		}
		if i > 0 {
			prev := skew[i-1]
			if dw.Weight > prev.Weight {
				t.Fatalf("entry %d out of order: %v after %v", i, dw.Weight, prev.Weight)
			}
			if dw.Weight == prev.Weight && dw.Name <= prev.Name {
				t.Fatalf("tie at weight %v not broken by name: %s then %s",
					dw.Weight, prev.Name, dw.Name)
			}
		}
		info, ok := world.Info(dw.Name)
		if !ok {
			t.Fatalf("%s not in the world's domain index", dw.Name)
		}
		_ = info
	}

	// Skew, not uniformity: the head must carry disproportionate weight.
	if len(skew) >= 10 {
		var head, total float64
		for i, dw := range skew {
			total += dw.Weight
			if i < len(skew)/10 {
				head += dw.Weight
			}
		}
		if head < total/5 {
			t.Fatalf("top decile carries %.1f%% of weight; expected a loud-campaign head", 100*head/total)
		}
	}
}

func TestLoudCampaignSkewDeterministic(t *testing.T) {
	w1, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1.LoudCampaignSkew(), w2.LoudCampaignSkew()) {
		t.Fatal("same seed produced different skews")
	}
}
