package ecosystem

import (
	"testing"

	"tasterschoice/internal/simclock"
)

// testConfig returns a small, fast config for tests.
func testConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.1
	cfg.RXAffiliates = 120
	cfg.RXLoudAffiliates = 8
	cfg.BenignDomains = 2000
	cfg.AlexaTopN = 800
	cfg.ODPDomains = 400
	cfg.ObscureRegistered = 300
	cfg.WebOnlyDomains = 500
	cfg.OtherGoodsCampaigns = 500
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := MustGenerate(testConfig(7))
	w2 := MustGenerate(testConfig(7))
	if len(w1.Campaigns) != len(w2.Campaigns) {
		t.Fatalf("campaign counts differ: %d vs %d", len(w1.Campaigns), len(w2.Campaigns))
	}
	for i := range w1.Campaigns {
		c1, c2 := &w1.Campaigns[i], &w2.Campaigns[i]
		if c1.Affiliate != c2.Affiliate || c1.Volume != c2.Volume ||
			!c1.Start.Equal(c2.Start) || len(c1.Domains) != len(c2.Domains) {
			t.Fatalf("campaign %d differs", i)
		}
		for j := range c1.Domains {
			if c1.Domains[j].Name != c2.Domains[j].Name {
				t.Fatalf("campaign %d domain %d differs: %s vs %s",
					i, j, c1.Domains[j].Name, c2.Domains[j].Name)
			}
		}
	}
	if len(w1.Benign) != len(w2.Benign) || w1.Benign[0].Name != w2.Benign[0].Name {
		t.Fatal("benign universes differ")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	w1 := MustGenerate(testConfig(1))
	w2 := MustGenerate(testConfig(2))
	if len(w1.Campaigns) > 0 && len(w2.Campaigns) > 0 {
		if w1.Campaigns[0].Domains[0].Name == w2.Campaigns[0].Domains[0].Name {
			t.Fatal("different seeds produced the same first domain")
		}
	}
}

func TestProgramStructure(t *testing.T) {
	w := MustGenerate(testConfig(3))
	cfg := w.Config
	want := cfg.PharmaPrograms + cfg.ReplicaPrograms + cfg.SoftwarePrograms
	if len(w.Programs) != want {
		t.Fatalf("programs = %d, want %d", len(w.Programs), want)
	}
	rx := w.RXProgram()
	if rx == nil {
		t.Fatal("no RX program")
	}
	if rx.Category != CategoryPharma {
		t.Fatalf("RX category = %v", rx.Category)
	}
	nRX := 0
	for _, p := range w.Programs {
		if p.RX {
			nRX++
		}
	}
	if nRX != 1 {
		t.Fatalf("RX programs = %d, want 1", nRX)
	}
}

func TestAffiliateTiersAndKeys(t *testing.T) {
	w := MustGenerate(testConfig(4))
	rx := w.RXProgram()
	var rxCount, rxLoud int
	keys := map[string]bool{}
	for _, a := range w.Affiliates {
		if a.AnnualRevenue < w.Config.RevenueMin {
			t.Fatalf("affiliate %d revenue %g below floor", a.ID, a.AnnualRevenue)
		}
		if a.Program == rx.ID {
			rxCount++
			if a.Key == "" {
				t.Fatalf("RX affiliate %d missing key", a.ID)
			}
			if keys[a.Key] {
				t.Fatalf("duplicate RX key %q", a.Key)
			}
			keys[a.Key] = true
			if a.Tier == TierLoud {
				rxLoud++
			}
		} else if a.Key != "" {
			t.Fatalf("non-RX affiliate %d has key %q", a.ID, a.Key)
		}
	}
	if rxCount != w.Config.RXAffiliates {
		t.Fatalf("RX affiliates = %d, want %d", rxCount, w.Config.RXAffiliates)
	}
	if rxLoud != w.Config.RXLoudAffiliates {
		t.Fatalf("RX loud = %d, want %d", rxLoud, w.Config.RXLoudAffiliates)
	}
}

func TestQuietAffiliatesHoldTopRevenue(t *testing.T) {
	w := MustGenerate(testConfig(5))
	rx := w.RXProgram()
	var best *Affiliate
	for i := range w.Affiliates {
		a := &w.Affiliates[i]
		if a.Program != rx.ID {
			continue
		}
		if best == nil || a.AnnualRevenue > best.AnnualRevenue {
			best = a
		}
	}
	if best.Tier != TierQuiet {
		t.Fatalf("top-revenue RX affiliate tier = %v, want quiet", best.Tier)
	}
}

func TestBotnets(t *testing.T) {
	w := MustGenerate(testConfig(6))
	if len(w.Botnets) != w.Config.Botnets {
		t.Fatalf("botnets = %d", len(w.Botnets))
	}
	monitored := 0
	for _, b := range w.Botnets {
		if b.Monitored {
			monitored++
		}
		if len(b.Affiliates) == 0 {
			t.Fatalf("botnet %d has empty roster", b.ID)
		}
		for _, aff := range b.Affiliates {
			if w.Affiliates[aff].Tier != TierLoud {
				t.Fatalf("botnet %d roster affiliate %d is %v, want loud",
					b.ID, aff, w.Affiliates[aff].Tier)
			}
		}
	}
	if monitored != w.Config.MonitoredBotnets {
		t.Fatalf("monitored = %d", monitored)
	}
	p := w.Poisoner()
	if p == nil || !p.Monitored {
		t.Fatal("poisoner must exist and be monitored")
	}
}

func TestBenignUniverse(t *testing.T) {
	w := MustGenerate(testConfig(8))
	cfg := w.Config
	if len(w.Benign) != cfg.BenignDomains {
		t.Fatalf("benign = %d", len(w.Benign))
	}
	alexa, odp, redir := 0, 0, 0
	for i, b := range w.Benign {
		if b.Rank != i {
			t.Fatalf("rank %d at index %d", b.Rank, i)
		}
		if b.Alexa {
			alexa++
		}
		if b.ODP {
			odp++
		}
		if b.Redirector {
			redir++
		}
		info, ok := w.Info(b.Name)
		if !ok || info.Kind != KindBenign || !info.Registered || !info.Alive {
			t.Fatalf("benign %s index broken: %+v ok=%v", b.Name, info, ok)
		}
	}
	if alexa != cfg.AlexaTopN || odp != cfg.ODPDomains || redir != cfg.Redirectors {
		t.Fatalf("alexa=%d odp=%d redir=%d", alexa, odp, redir)
	}
	if len(w.Redirectors()) != cfg.Redirectors {
		t.Fatalf("Redirectors() = %d", len(w.Redirectors()))
	}
}

func TestCampaignInvariants(t *testing.T) {
	w := MustGenerate(testConfig(9))
	if len(w.Campaigns) == 0 {
		t.Fatal("no campaigns generated")
	}
	classCount := map[CampaignClass]int{}
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		if c.ID != i {
			t.Fatalf("campaign %d has ID %d", i, c.ID)
		}
		if !c.End.After(c.Start) {
			t.Fatalf("campaign %d empty window", i)
		}
		if len(c.Domains) == 0 {
			t.Fatalf("campaign %d has no domains", i)
		}
		classCount[c.Class]++
		switch c.Class {
		case ClassLoud:
			if c.Botnet < 0 || c.Botnet >= len(w.Botnets) {
				t.Fatalf("loud campaign %d botnet %d", i, c.Botnet)
			}
		case ClassWebOnly:
			if c.Volume != 0 {
				t.Fatalf("web-only campaign %d has volume %g", i, c.Volume)
			}
		default:
			if c.Botnet != -1 {
				t.Fatalf("%v campaign %d has botnet %d", c.Class, i, c.Botnet)
			}
		}
		for _, d := range c.Domains {
			if !d.End.After(d.Start) {
				t.Fatalf("campaign %d domain %s empty ad window", i, d.Name)
			}
			if d.Start.Before(c.Start.Add(-1)) || d.End.After(c.End.Add(1)) {
				t.Fatalf("campaign %d domain %s outside campaign window", i, d.Name)
			}
		}
	}
	for _, cls := range []CampaignClass{ClassLoud, ClassQuiet, ClassTiny, ClassWebOnly} {
		if classCount[cls] == 0 {
			t.Errorf("no %v campaigns", cls)
		}
	}
}

func TestIndexConsistency(t *testing.T) {
	w := MustGenerate(testConfig(10))
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		for _, d := range c.Domains {
			info, ok := w.Info(d.Name)
			if !ok {
				t.Fatalf("campaign %d domain %s not indexed", i, d.Name)
			}
			if d.Redirector {
				if info.Kind != KindBenign {
					t.Fatalf("redirector slot %s indexed as %v", d.Name, info.Kind)
				}
				continue
			}
			if info.Campaign != c.ID {
				t.Fatalf("domain %s maps to campaign %d, want %d", d.Name, info.Campaign, c.ID)
			}
			if info.Program != c.Program || info.Affiliate != c.Affiliate {
				t.Fatalf("domain %s program/affiliate mismatch", d.Name)
			}
			if c.Class != ClassWebOnly && !info.Registered {
				t.Fatalf("mail-spam domain %s not registered", d.Name)
			}
		}
	}
}

func TestSpamDomainsRegisteredBeforeAdStart(t *testing.T) {
	w := MustGenerate(testConfig(11))
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		if c.Class == ClassWebOnly {
			continue
		}
		for _, d := range c.Domains {
			if d.Redirector {
				continue
			}
			if !w.Registry.ActiveAt(d.Name, d.Start) {
				t.Fatalf("domain %s not registered at ad start", d.Name)
			}
		}
	}
}

func TestTaggedUniverseNonEmpty(t *testing.T) {
	w := MustGenerate(testConfig(12))
	if n := w.TaggedUniverse(); n < 50 {
		t.Fatalf("tagged universe %d, expected at least 50 at test scale", n)
	}
}

func TestPoisonWindowInsideMeasurement(t *testing.T) {
	w := MustGenerate(testConfig(13))
	pw := w.PoisonWindow()
	mw := w.Config.Window
	if pw.Start.Before(mw.Start) || pw.End.After(mw.End) {
		t.Fatalf("poison window %v outside measurement %v", pw, mw)
	}
	if !pw.End.After(pw.Start) {
		t.Fatal("empty poison window")
	}
}

func TestAdURLRoundTrip(t *testing.T) {
	c := &Campaign{ID: 42}
	d := AdDomain{Name: "cheappills7.com"}
	u := AdURL(c, d)
	id, redirect, ok := DecodeCampaignToken(u)
	if !ok || id != 42 || redirect {
		t.Fatalf("decode(%q) = %d,%v,%v", u, id, redirect, ok)
	}
	d.Redirector = true
	u = AdURL(c, d)
	id, redirect, ok = DecodeCampaignToken(u)
	if !ok || id != 42 || !redirect {
		t.Fatalf("decode(%q) = %d,%v,%v", u, id, redirect, ok)
	}
}

func TestDecodeCampaignTokenRejects(t *testing.T) {
	for _, u := range []string{
		"http://x.com/",
		"http://x.com",
		"http://x.com/p/x42",
		"http://x.com/p/c-3",
		"http://x.com/p/cabc",
		"",
	} {
		if _, _, ok := DecodeCampaignToken(u); ok {
			t.Errorf("DecodeCampaignToken(%q) unexpectedly ok", u)
		}
	}
}

func TestChaffURL(t *testing.T) {
	if got := ChaffURL("img-host.com"); got != "http://img-host.com/" {
		t.Fatalf("ChaffURL = %q", got)
	}
}

func TestValidate(t *testing.T) {
	good := testConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Error("Scale=0 accepted")
	}
	bad = good
	bad.RXLoudAffiliates = bad.RXAffiliates + 1
	if err := bad.Validate(); err == nil {
		t.Error("too many loud affiliates accepted")
	}
	bad = good
	bad.Window = simclock.Window{}
	if err := bad.Validate(); err == nil {
		t.Error("empty window accepted")
	}
	bad = good
	bad.PoisonStartDay, bad.PoisonEndDay = 10, 5
	if err := bad.Validate(); err == nil {
		t.Error("inverted poison window accepted")
	}
}

func TestWorldStats(t *testing.T) {
	w := MustGenerate(testConfig(14))
	s := w.Stats()
	if s.Programs != len(w.Programs) || s.Affiliates != len(w.Affiliates) {
		t.Fatalf("stats: %+v", s)
	}
	if s.Loud+s.Quiet+s.Tiny+s.WebOnly != len(w.Campaigns) {
		t.Fatalf("campaign classes don't sum: %+v vs %d", s, len(w.Campaigns))
	}
	if s.Mega == 0 || s.Mega > s.Loud {
		t.Fatalf("mega = %d of %d loud", s.Mega, s.Loud)
	}
	if s.SpamDomains == 0 || s.SpamDomains > s.AdDomains {
		t.Fatalf("domains: %+v", s)
	}
	if s.NominalVolume <= 0 {
		t.Fatal("no volume")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMegaCampaignInvariants(t *testing.T) {
	w := MustGenerate(testConfig(15))
	found := 0
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		if c.Class != ClassLoud || c.Duration().Hours() < 24*45 {
			continue
		}
		found++
		// Mega volume dwarfs the ordinary loud median.
		if c.Volume < 20*w.Config.LoudVolumeMedian {
			t.Errorf("mega campaign %d volume %.0f too small", c.ID, c.Volume)
		}
		// Persistent rotation: every slot runs to campaign end.
		for _, d := range c.Domains {
			if d.Redirector {
				continue
			}
			if !d.End.Equal(c.End) {
				t.Errorf("mega campaign %d slot %s ends %v, want campaign end %v",
					c.ID, d.Name, d.End, c.End)
			}
		}
		// Weights normalize.
		sum := 0.0
		for _, d := range c.Domains {
			sum += d.Weight
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("mega campaign %d weights sum %.3f", c.ID, sum)
		}
	}
	if found == 0 {
		t.Fatal("no mega campaigns at test scale")
	}
	// At least one mega must run on a monitored botnet (the Bot feed's
	// window into the dominant volume).
	monitored := false
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		if c.Class == ClassLoud && c.Duration().Hours() >= 24*45 &&
			c.Botnet >= 0 && w.Botnets[c.Botnet].Monitored {
			monitored = true
		}
	}
	if !monitored {
		t.Fatal("no mega campaign on a monitored botnet")
	}
}

func TestWebOnlyTaggedFraction(t *testing.T) {
	cfg := testConfig(16)
	cfg.WebOnlyDomains = 2000
	cfg.WebOnlyTaggedFrac = 0.05
	w := MustGenerate(cfg)
	tagged, total := 0, 0
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		if c.Class != ClassWebOnly {
			continue
		}
		total++
		if c.Program >= 0 {
			tagged++
			info, _ := w.Info(c.Domains[0].Name)
			if info.Kind != KindStorefront || info.Program != c.Program {
				t.Fatalf("web-only storefront %s mis-indexed: %+v", c.Domains[0].Name, info)
			}
			if !info.Registered {
				t.Fatalf("web-only storefront %s unregistered", c.Domains[0].Name)
			}
		}
	}
	if total == 0 {
		t.Fatal("no web-only campaigns")
	}
	frac := float64(tagged) / float64(total)
	if frac < 0.02 || frac > 0.10 {
		t.Fatalf("web-only tagged fraction %.3f, want ~0.05", frac)
	}
}
