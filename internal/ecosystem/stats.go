package ecosystem

import (
	"fmt"
	"strings"
)

// WorldStats summarizes a generated world — the inventory printed by
// cmd/tasters so a reader can see what the scenario actually contains.
type WorldStats struct {
	Programs   int
	Affiliates int
	// RXAffiliates is the keyed-affiliate roster size.
	RXAffiliates int
	Botnets      int
	Monitored    int
	// Campaign counts by class; Mega counts the months-long blasts
	// (a subset of Loud).
	Loud, Quiet, Tiny, WebOnly, Mega int
	// AdDomains is the number of advertised domain slots; SpamDomains
	// the distinct registered spam domains created for them.
	AdDomains   int
	SpamDomains int
	Benign      int
	// NominalVolume is the total campaign volume at simulation scale.
	NominalVolume float64
}

// Stats computes the inventory.
func (w *World) Stats() WorldStats {
	s := WorldStats{
		Programs:   len(w.Programs),
		Affiliates: len(w.Affiliates),
		Botnets:    len(w.Botnets),
		Benign:     len(w.Benign),
	}
	rx := w.RXProgram()
	for i := range w.Affiliates {
		if rx != nil && w.Affiliates[i].Program == rx.ID {
			s.RXAffiliates++
		}
	}
	for i := range w.Botnets {
		if w.Botnets[i].Monitored {
			s.Monitored++
		}
	}
	spamDomains := make(map[string]bool)
	for i := range w.Campaigns {
		c := &w.Campaigns[i]
		switch c.Class {
		case ClassLoud:
			s.Loud++
			if c.Duration().Hours() > 24*45 {
				s.Mega++
			}
		case ClassQuiet:
			s.Quiet++
		case ClassTiny:
			s.Tiny++
		case ClassWebOnly:
			s.WebOnly++
		}
		s.NominalVolume += c.Volume
		for _, d := range c.Domains {
			s.AdDomains++
			if !d.Redirector {
				spamDomains[string(d.Name)] = true
			}
		}
	}
	s.SpamDomains = len(spamDomains)
	return s
}

// String renders the inventory compactly.
func (s WorldStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d programs (%d RX affiliates of %d total), %d botnets (%d monitored)\n",
		s.Programs, s.RXAffiliates, s.Affiliates, s.Botnets, s.Monitored)
	fmt.Fprintf(&b, "campaigns: %d loud (%d mega), %d quiet, %d tiny, %d web-only\n",
		s.Loud, s.Mega, s.Quiet, s.Tiny, s.WebOnly)
	fmt.Fprintf(&b, "%d ad slots over %d spam domains, %d benign domains, %.1fM nominal messages",
		s.AdDomains, s.SpamDomains, s.Benign, s.NominalVolume/1e6)
	return b.String()
}
