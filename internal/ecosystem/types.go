// Package ecosystem generates the synthetic spam ecosystem that stands
// in for the paper's proprietary data: affiliate programs and their
// affiliates, spam-sending botnets, advertising campaigns with domain
// rotation, and the benign-domain universe (Alexa/ODP stand-ins,
// redirectors, chaff).
//
// The generator is purely structural: it decides who advertises what,
// when, with which domains, and how loudly. Turning that structure into
// observed feed entries — the collection-methodology biases that are
// the paper's actual subject — is the job of internal/mailflow.
//
// Everything is deterministic given Config.Seed.
package ecosystem

import (
	"time"

	"tasterschoice/internal/domain"
	"tasterschoice/internal/symtab"
)

// Category classifies the goods an affiliate program sells. The paper
// tags storefronts in three categories (pharmaceuticals, replicas, OEM
// software); spam for anything else is "other" — its sites may be live
// but are never tagged.
type Category uint8

const (
	// CategoryPharma is online pharmacy spam, the dominant class.
	CategoryPharma Category = iota
	// CategoryReplica is counterfeit luxury goods spam.
	CategoryReplica
	// CategorySoftware is unlicensed "OEM" software spam.
	CategorySoftware
	// CategoryOther covers goods outside the tagged classes; the
	// paper's crawler finds these sites live but cannot tag them.
	CategoryOther
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CategoryPharma:
		return "pharma"
	case CategoryReplica:
		return "replica"
	case CategorySoftware:
		return "software"
	case CategoryOther:
		return "other"
	default:
		return "unknown"
	}
}

// Tagged reports whether storefronts in this category are tagged by the
// content classifier (the Click Trajectories signature set).
func (c Category) Tagged() bool { return c != CategoryOther }

// Program is an affiliate program: it hosts storefront sites, handles
// payment and fulfillment, and pays advertising commissions.
type Program struct {
	ID       int
	Name     string
	Category Category
	// RX marks the RX-Promotion-like program whose storefront pages
	// embed the advertising affiliate's identifier, making per-
	// affiliate analyses (paper §4.2.3, Figs 5–6) possible.
	RX bool
}

// AffiliateTier describes how an affiliate advertises, which determines
// which feeds can observe its campaigns.
type AffiliateTier uint8

const (
	// TierLoud affiliates rent botnets and blast high-volume spam from
	// brute-force and harvested address lists. Every honeypot sees
	// them; most of their mail is filtered before users do.
	TierLoud AffiliateTier = iota
	// TierQuiet affiliates run lower-volume, deliverability-focused
	// campaigns on purchased targeted lists. Mostly only the webmail
	// user base (and hence human-identified feeds) sees them.
	TierQuiet
	// TierTiny affiliates send very small campaigns; only an enormous
	// net catches them at all.
	TierTiny
)

// String returns the tier name.
func (t AffiliateTier) String() string {
	switch t {
	case TierLoud:
		return "loud"
	case TierQuiet:
		return "quiet"
	case TierTiny:
		return "tiny"
	default:
		return "unknown"
	}
}

// Affiliate is an advertiser working for a program on commission.
type Affiliate struct {
	ID      int
	Program int // Program.ID
	// Key is the identifier embedded in RX-program storefront pages
	// ("aff=..."), empty for non-RX programs.
	Key string
	// AnnualRevenue is the affiliate's yearly revenue in USD; only
	// populated for the RX program (the paper's leaked ledger covers
	// only RX-Promotion).
	AnnualRevenue float64
	Tier          AffiliateTier
}

// Botnet is a spam-sending botnet. A few are "monitored": researchers
// run captive bot instances and capture their outbound spam (the Bot
// feed).
type Botnet struct {
	ID        int
	Name      string
	Monitored bool
	// Poisoner marks the Rustock-like botnet that spends part of the
	// measurement period sending randomly generated, unregistered
	// domain names.
	Poisoner bool
	// Affiliates identifies the operator's affiliate registrations:
	// botnet operators typically advertise for a handful of programs
	// where they are themselves signed up.
	Affiliates []int
	// List-composition fractions: how the botnet's target address
	// lists were built. They need not sum to 1; each is an
	// independent reach coefficient used by mailflow.
	BruteForceFrac float64 // generated addresses; reaches MX honeypots
	HarvestedFrac  float64 // scraped addresses; reaches honey accounts
	WebmailFrac    float64 // fraction of list that is webmail users
}

// CampaignClass describes a campaign's sending strategy.
type CampaignClass uint8

const (
	// ClassLoud is botnet-delivered bulk spam.
	ClassLoud CampaignClass = iota
	// ClassQuiet is lower-volume targeted spam.
	ClassQuiet
	// ClassTiny is very low-volume targeted spam.
	ClassTiny
	// ClassWebOnly marks domains advertised through web/search spam
	// rather than e-mail; they reach only the hybrid feed's non-mail
	// sources.
	ClassWebOnly
)

// String returns the class name.
func (c CampaignClass) String() string {
	switch c {
	case ClassLoud:
		return "loud"
	case ClassQuiet:
		return "quiet"
	case ClassTiny:
		return "tiny"
	case ClassWebOnly:
		return "webonly"
	default:
		return "unknown"
	}
}

// AdDomain is one advertised domain within a campaign, active during
// [Start, End) and carrying Weight share of the campaign volume.
type AdDomain struct {
	Name   domain.Name
	Start  time.Time
	End    time.Time
	Weight float64
	// Redirector marks an abused benign redirection service (URL
	// shortener, free hosting): the advertised domain is benign and
	// popular, but its URLs redirect to the campaign storefront.
	Redirector bool
	// Landing marks a dedicated throwaway domain that redirects to a
	// separate storefront domain; the crawler still reaches (and
	// tags) the storefront.
	Landing bool
	// Alive reports whether the domain's web presence survived until
	// the crawler visited (dead sites fail the HTTP liveness check).
	Alive bool
	// Sym and URLSym are the interned IDs of Name and of the slot's
	// advertised URL (AdURL) in World.Syms, assigned by EnsureSyms so
	// the per-message hot path never touches the strings.
	Sym    symtab.ID
	URLSym symtab.ID
}

// Campaign is one advertising push by one affiliate: a set of rotated
// domains, a volume, and a sending window.
type Campaign struct {
	ID        int
	Affiliate int // Affiliate.ID
	Program   int // Program.ID, -1 for unbranded "other goods" spam
	Class     CampaignClass
	Botnet    int // sending botnet for ClassLoud, else -1
	Start     time.Time
	End       time.Time
	// Volume is the nominal number of messages the campaign sends
	// over its window (at the simulation's scale).
	Volume  float64
	Domains []AdDomain
}

// Duration returns the campaign's sending window length.
func (c *Campaign) Duration() time.Duration { return c.End.Sub(c.Start) }

// BenignDomain is a legitimate domain in the simulated Internet.
type BenignDomain struct {
	Name domain.Name
	// Rank is the popularity rank (0 = most popular), driving both
	// its Alexa standing and its volume in legitimate mail.
	Rank int
	// Alexa marks membership in the Alexa-top-1M stand-in list.
	Alexa bool
	// ODP marks membership in the Open Directory stand-in listing.
	ODP bool
	// Redirector marks redirection services spammers can abuse.
	Redirector bool
	// Sym and URLSym are the interned IDs of Name and of the derived
	// chaff URL "http://<name>/" in World.Syms.
	Sym    symtab.ID
	URLSym symtab.ID
}
