package ecosystem

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tasterschoice/internal/dnszone"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/randutil"
	"tasterschoice/internal/simclock"
)

// Generate builds a complete deterministic world from the config.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		Config:   cfg,
		Registry: dnszone.NewPaperRegistry(),
		index:    make(map[domain.Name]*DomainInfo),
	}
	root := randutil.New(cfg.Seed)
	names := newNameGen(root.SplitNamed("names"))

	w.genPrograms(root.SplitNamed("programs"))
	w.genAffiliates(root.SplitNamed("affiliates"))
	w.genBenign(root.SplitNamed("benign"), names)
	w.genObscure(root.SplitNamed("obscure"), names)
	w.genBotnets(root.SplitNamed("botnets"))
	w.genCampaigns(root.SplitNamed("campaigns"), names)
	w.EnsureSyms()
	return w, nil
}

// MustGenerate is Generate that panics on error, for tests and tools
// with static configs.
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *World) genPrograms(rng *randutil.RNG) {
	add := func(cat Category, n int) {
		for i := 0; i < n; i++ {
			id := len(w.Programs)
			p := Program{ID: id, Category: cat, Name: programName(rng, cat, id)}
			if cat == CategoryPharma && i == 0 {
				p.Name = "RX-Promotion"
				p.RX = true
			}
			w.Programs = append(w.Programs, p)
		}
	}
	add(CategoryPharma, w.Config.PharmaPrograms)
	add(CategoryReplica, w.Config.ReplicaPrograms)
	add(CategorySoftware, w.Config.SoftwarePrograms)
}

func (w *World) genAffiliates(rng *randutil.RNG) {
	cfg := &w.Config
	for pi := range w.Programs {
		prog := &w.Programs[pi]
		n := cfg.RXAffiliates
		if !prog.RX {
			n = 3 + rng.Poisson(math.Max(cfg.OtherAffiliatesMean-3, 1))
		}
		base := len(w.Affiliates)
		for i := 0; i < n; i++ {
			a := Affiliate{
				ID:            base + i,
				Program:       prog.ID,
				AnnualRevenue: rng.Pareto(cfg.RevenueMin, cfg.RevenueAlpha),
				Tier:          TierTiny,
			}
			if prog.RX {
				a.Key = fmt.Sprintf("rx%04d", i) //lint:allow stringalloc -- name minting: runs once per world, feeds the interner
			}
			w.Affiliates = append(w.Affiliates, a)
		}
		// Assign tiers by revenue rank: the top QuietAffiliateFrac run
		// quiet deliverability-focused campaigns; loud affiliates come
		// from the mid-revenue band (botnet operators are modest
		// earners, per the paper's Fig. 6 discussion); the rest tiny.
		order := make([]int, n)
		for i := range order {
			order[i] = base + i
		}
		sort.Slice(order, func(i, j int) bool {
			return w.Affiliates[order[i]].AnnualRevenue > w.Affiliates[order[j]].AnnualRevenue
		})
		quietCut := int(float64(n) * cfg.QuietAffiliateFrac)
		for _, id := range order[:quietCut] {
			w.Affiliates[id].Tier = TierQuiet
		}
		nLoud := 1
		if prog.RX {
			nLoud = cfg.RXLoudAffiliates
		} else if rng.Bool(0.5) {
			nLoud = 2
		}
		// Loud affiliates from the 45th–85th revenue percentile band.
		bandLo := int(float64(n) * 0.45)
		bandHi := int(float64(n) * 0.85)
		if bandHi <= bandLo {
			bandLo, bandHi = 0, n
		}
		if nLoud > bandHi-bandLo {
			nLoud = bandHi - bandLo
		}
		for _, k := range rng.SampleInts(bandHi-bandLo, nLoud) {
			w.Affiliates[order[bandLo+k]].Tier = TierLoud
		}
	}
}

func (w *World) genBenign(rng *randutil.RNG, names *nameGen) {
	cfg := &w.Config
	n := cfg.BenignDomains
	w.Benign = make([]BenignDomain, n)
	regStart := cfg.Window.Start
	for i := 0; i < n; i++ {
		d := names.Benign()
		w.Benign[i] = BenignDomain{
			Name:  d,
			Rank:  i,
			Alexa: i < cfg.AlexaTopN,
		}
		// Registered long before the measurement window.
		w.Registry.Register(d, regStart.AddDate(0, 0, -(100+rng.Intn(2900))))
	}
	for _, i := range rng.SampleInts(n, cfg.ODPDomains) {
		w.Benign[i].ODP = true
	}
	// Redirection services sit in the mid-popularity band — a URL
	// shortener is well known but carries far less legitimate mail
	// volume than the global top sites.
	lo, hi := n/10, n/2
	if hi-lo < cfg.Redirectors {
		lo, hi = 0, n
	}
	for _, i := range rng.SampleInts(hi-lo, cfg.Redirectors) {
		w.Benign[lo+i].Redirector = true
		w.redirectors = append(w.redirectors, w.Benign[lo+i].Name)
	}
	for i := range w.Benign {
		b := &w.Benign[i]
		w.index[b.Name] = &DomainInfo{
			Kind:       KindBenign,
			Campaign:   -1,
			Program:    -1,
			Affiliate:  -1,
			Category:   CategoryOther,
			Alive:      true,
			Registered: true,
			Alexa:      b.Alexa,
			ODP:        b.ODP,
			Redirector: b.Redirector,
			BenignRank: b.Rank,
		}
	}
}

func (w *World) genObscure(rng *randutil.RNG, names *nameGen) {
	regStart := w.Config.Window.Start
	for i := 0; i < w.Config.ObscureRegistered; i++ {
		d := names.Obscure()
		w.Obscure = append(w.Obscure, d)
		w.Registry.Register(d, regStart.AddDate(0, 0, -(30+rng.Intn(2000))))
		w.index[d] = &DomainInfo{
			Kind:       KindObscure,
			Campaign:   -1,
			Program:    -1,
			Affiliate:  -1,
			Category:   CategoryOther,
			Alive:      true,
			Registered: true,
			BenignRank: -1,
		}
	}
}

func (w *World) genBotnets(rng *randutil.RNG) {
	cfg := &w.Config
	// Collect the loud-affiliate pool in ID order.
	var pool []int
	for i := range w.Affiliates {
		if w.Affiliates[i].Tier == TierLoud {
			pool = append(pool, i)
		}
	}
	for i := 0; i < cfg.Botnets; i++ {
		name := fmt.Sprintf("botnet%02d", i) //lint:allow stringalloc -- name minting: runs once per world, feeds the interner
		if i < len(botnetNames) {
			name = botnetNames[i]
		}
		b := Botnet{
			ID:        i,
			Name:      name,
			Monitored: i < cfg.MonitoredBotnets,
			Poisoner:  i == 0,
			// Address-list composition varies by botnet; these
			// coefficients produce the per-feed visibility spread
			// seen in the paper's pairwise matrices.
			BruteForceFrac: 0.3 + 0.6*rng.Float64(),
			HarvestedFrac:  0.2 + 0.6*rng.Float64(),
			WebmailFrac:    0.4 + 0.5*rng.Float64(),
		}
		nAff := 1 + rng.Poisson(math.Max(cfg.BotnetAffiliatesMean-1, 0.5))
		if nAff > len(pool) {
			nAff = len(pool)
		}
		for _, k := range rng.SampleInts(len(pool), nAff) {
			b.Affiliates = append(b.Affiliates, pool[k])
		}
		sort.Ints(b.Affiliates)
		w.Botnets = append(w.Botnets, b)
	}
}

// dayDur converts fractional days to a duration.
func dayDur(days float64) time.Duration {
	return time.Duration(days * 24 * float64(time.Hour))
}

// campaignSpan picks a campaign window of the given day range, placed
// so most campaigns fall fully inside the measurement window but some
// straddle its edges (as in any real trace).
func campaignSpan(rng *randutil.RNG, w simclock.Window, minDays, maxDays float64) (time.Time, time.Time) {
	dur := dayDur(minDays + rng.Float64()*(maxDays-minDays))
	span := w.Duration() - dur/2 + dayDur(2)
	start := w.Start.Add(-dayDur(2)).Add(time.Duration(rng.Float64() * float64(span)))
	return start, start.Add(dur)
}

// rotateDomains splits the campaign window across k ad slots with a
// slight overlap between consecutive slots.
func rotateDomains(start, end time.Time, k int) []simclock.Window {
	if k < 1 {
		k = 1
	}
	total := end.Sub(start)
	seg := total / time.Duration(k)
	overlap := seg / 6
	out := make([]simclock.Window, k)
	for i := 0; i < k; i++ {
		s := start.Add(time.Duration(i) * seg)
		e := s.Add(seg + overlap)
		if e.After(end) {
			e = end
		}
		out[i] = simclock.Window{Start: s, End: e}
	}
	return out
}

// addAdDomain creates an ad slot for a campaign, registering fresh
// domains and updating the ground-truth index.
func (w *World) addAdDomain(rng *randutil.RNG, names *nameGen, c *Campaign,
	slot simclock.Window, weight float64, aliveProb float64, allowRedirector bool) {
	cfg := &w.Config
	ad := AdDomain{Start: slot.Start, End: slot.End, Weight: weight}
	switch {
	case allowRedirector && len(w.redirectors) > 0 && rng.Bool(cfg.RedirectorAdFrac):
		ad.Redirector = true
		ad.Alive = true
		ad.Name = w.redirectors[rng.Intn(len(w.redirectors))]
	default:
		ad.Landing = rng.Bool(cfg.LandingAdFrac)
		ad.Alive = rng.Bool(aliveProb)
		ad.Name = names.Spam()
		reg := slot.Start.Add(-dayDur(1 + rng.ExpFloat64()*4))
		w.Registry.Register(ad.Name, reg)
		if rng.Bool(0.8) {
			w.Registry.Drop(ad.Name, slot.End.Add(dayDur(5+rng.Float64()*55)))
		}
		kind := KindStorefront
		if ad.Landing {
			kind = KindLanding
		}
		w.index[ad.Name] = &DomainInfo{
			Kind:       kind,
			Campaign:   c.ID,
			Program:    c.Program,
			Affiliate:  c.Affiliate,
			Category:   w.campaignCategory(c),
			Alive:      ad.Alive,
			Registered: true,
			BenignRank: -1,
		}
	}
	c.Domains = append(c.Domains, ad)
}

// campaignCategory returns the goods category a campaign advertises.
func (w *World) campaignCategory(c *Campaign) Category {
	if c.Program < 0 {
		return CategoryOther
	}
	return w.Programs[c.Program].Category
}

func (w *World) genCampaigns(rng *randutil.RNG, names *nameGen) {
	cfg := &w.Config
	win := cfg.Window

	newCampaign := func(affiliate, program int, class CampaignClass, botnet int,
		start, end time.Time, volume float64) *Campaign {
		w.Campaigns = append(w.Campaigns, Campaign{
			ID:        len(w.Campaigns),
			Affiliate: affiliate,
			Program:   program,
			Class:     class,
			Botnet:    botnet,
			Start:     start,
			End:       end,
			Volume:    volume,
		})
		return &w.Campaigns[len(w.Campaigns)-1]
	}

	// --- Loud botnet campaigns for tagged programs. -----------------
	loudRng := rng.SplitNamed("loud")
	for bi := range w.Botnets {
		b := &w.Botnets[bi]
		for _, aff := range b.Affiliates {
			n := loudRng.Poisson(cfg.LoudCampaignsPerSlot * cfg.Scale)
			for j := 0; j < n; j++ {
				start, end := campaignSpan(loudRng, win, 4, 18)
				vol := loudRng.LogNormal(math.Log(cfg.LoudVolumeMedian), cfg.LoudVolumeSigma)
				c := newCampaign(aff, w.Affiliates[aff].Program, ClassLoud, b.ID, start, end, vol)
				k := 1 + loudRng.Poisson(math.Max(cfg.LoudDomainsMean-1, 0.1))
				slots := rotateDomains(start, end, k)
				for _, slot := range slots {
					w.addAdDomain(loudRng, names, c, slot, 1/float64(len(slots)), cfg.LoudAliveProb, true)
				}
			}
		}
	}

	// --- Mega campaigns: months-long continuous blasts. --------------
	megaRng := rng.SplitNamed("mega")
	nMega := cfg.scaled(cfg.MegaCampaigns, 0)
	if cfg.MegaCampaigns > 0 && nMega == 0 {
		nMega = 1
	}
	for i := 0; i < nMega; i++ {
		// The first mega runs on a monitored (non-poisoner) botnet so
		// the Bot feed covers a slice of the dominant volume; the
		// rest run on unmonitored botnets.
		botnet := 1 % len(w.Botnets)
		if i > 0 && len(w.Botnets) > cfg.MonitoredBotnets {
			botnet = cfg.MonitoredBotnets +
				megaRng.Intn(len(w.Botnets)-cfg.MonitoredBotnets)
		}
		roster := w.Botnets[botnet].Affiliates
		aff := roster[megaRng.Intn(len(roster))]
		dur := dayDur(cfg.MegaMinDays + megaRng.Float64()*(cfg.MegaMaxDays-cfg.MegaMinDays))
		// Megas start early enough to span most of the window.
		lead := time.Duration(megaRng.Float64() * float64(win.Duration()-dur))
		start := win.Start.Add(-dayDur(megaRng.Float64() * 5)).Add(lead)
		end := start.Add(dur)
		vol := cfg.LoudVolumeMedian * cfg.MegaVolumeMultiplier *
			megaRng.LogNormal(0, 0.3)
		c := newCampaign(aff, w.Affiliates[aff].Program, ClassLoud, botnet, start, end, vol)
		k := 1 + megaRng.Poisson(math.Max(cfg.MegaDomainsMean-1, 1))
		slots := rotateDomains(start, end, k)
		// Mega domains persist after rotation: each slot stays active
		// until campaign end, at weight proportional to its span.
		totalWeight := 0.0
		for si := range slots {
			slots[si].End = end
			totalWeight += slots[si].End.Sub(slots[si].Start).Hours()
		}
		for _, slot := range slots {
			weight := slot.End.Sub(slot.Start).Hours() / totalWeight
			w.addAdDomain(megaRng, names, c, slot, weight, 0.97, true)
		}
	}

	// --- Quiet targeted campaigns (tagged programs). ----------------
	quietRng := rng.SplitNamed("quiet")
	quietProb := cfg.QuietCampaignProb * math.Min(cfg.Scale, 1)
	for i := range w.Affiliates {
		if w.Affiliates[i].Tier != TierQuiet {
			continue
		}
		n := quietRng.Poisson(cfg.QuietExtraMean * cfg.Scale)
		if quietRng.Bool(quietProb) {
			n++
		}
		for j := 0; j < n; j++ {
			start, end := campaignSpan(quietRng, win, 2, 10)
			vol := quietRng.LogNormal(math.Log(cfg.QuietVolumeMedian), cfg.QuietVolumeSigma)
			c := newCampaign(i, w.Affiliates[i].Program, ClassQuiet, -1, start, end, vol)
			k := 1 + quietRng.Poisson(0.3)
			for _, slot := range rotateDomains(start, end, k) {
				w.addAdDomain(quietRng, names, c, slot, 1/float64(k), cfg.QuietAliveProb, false)
			}
		}
	}

	// --- Tiny campaigns: most tiny-tier affiliates send something. --
	tinyRng := rng.SplitNamed("tiny")
	for i := range w.Affiliates {
		if w.Affiliates[i].Tier != TierTiny {
			continue
		}
		if !tinyRng.Bool(cfg.TinyCampaignProb * math.Min(cfg.Scale, 1)) {
			continue
		}
		start, end := campaignSpan(tinyRng, win, 1, 5)
		vol := tinyRng.LogNormal(math.Log(cfg.TinyVolumeMedian), cfg.TinyVolumeSigma)
		c := newCampaign(i, w.Affiliates[i].Program, ClassTiny, -1, start, end, vol)
		w.addAdDomain(tinyRng, names, c,
			simclock.Window{Start: start, End: end}, 1, cfg.TinyAliveProb, false)
	}

	// --- Other-goods campaigns (live sites, never tagged). ----------
	otherRng := rng.SplitNamed("other")
	for i := 0; i < cfg.scaled(cfg.OtherGoodsCampaigns, 1); i++ {
		loud := otherRng.Bool(cfg.OtherGoodsLoudFrac)
		botnet := -1
		class := ClassQuiet
		minD, maxD := 1.0, 6.0
		volMedian := cfg.OtherVolumeMedian
		if loud {
			botnet = otherRng.Intn(len(w.Botnets))
			class = ClassLoud
			minD, maxD = 3, 12
			volMedian = cfg.LoudVolumeMedian / 4
		}
		start, end := campaignSpan(otherRng, win, minD, maxD)
		vol := otherRng.LogNormal(math.Log(volMedian), cfg.OtherVolumeSigma)
		c := newCampaign(-1, -1, class, botnet, start, end, vol)
		k := 1 + otherRng.Poisson(0.5)
		for _, slot := range rotateDomains(start, end, k) {
			w.addAdDomain(otherRng, names, c, slot, 1/float64(k), cfg.OtherAliveProb, loud)
		}
	}

	// --- Web-only spam domains (reach only the hybrid feed). --------
	webRng := rng.SplitNamed("webonly")
	for i := 0; i < cfg.scaled(cfg.WebOnlyDomains, 1); i++ {
		start, end := campaignSpan(webRng, win, 1, 30)
		// A small slice of web-spam domains are genuine program
		// storefronts advertised through search spam rather than
		// e-mail; the crawler tags them, and only the hybrid feed
		// ever sees them.
		program, affiliate := -1, -1
		kind := KindWebOnly
		category := CategoryOther
		if webRng.Bool(cfg.WebOnlyTaggedFrac) && len(w.Affiliates) > 0 {
			affiliate = webRng.Intn(len(w.Affiliates))
			program = w.Affiliates[affiliate].Program
			category = w.Programs[program].Category
			kind = KindStorefront
		}
		c := newCampaign(affiliate, program, ClassWebOnly, -1, start, end, 0)
		name := names.Spam()
		registered := webRng.Bool(cfg.WebOnlyRegisteredProb) || kind == KindStorefront
		alive := registered && webRng.Bool(cfg.WebOnlyAliveProb)
		if registered {
			w.Registry.Register(name, start.Add(-dayDur(1+webRng.ExpFloat64()*10)))
		}
		c.Domains = append(c.Domains, AdDomain{
			Name: name, Start: start, End: end, Weight: 1, Alive: alive,
		})
		w.index[name] = &DomainInfo{
			Kind:       kind,
			Campaign:   c.ID,
			Program:    program,
			Affiliate:  affiliate,
			Category:   category,
			Alive:      alive,
			Registered: registered,
			BenignRank: -1,
		}
	}
}
