package ecosystem

import "testing"

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := testConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustGenerate(cfg)
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	cfg := DefaultConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustGenerate(cfg)
	}
}
