package core

import (
	"fmt"
	"sort"

	"tasterschoice/internal/analysis"
)

// Question is a measurement question a researcher wants a feed for —
// the axes of the paper's §5 guidance.
type Question uint8

const (
	// QCoverage: which feed captures the most spam domains?
	QCoverage Question = iota
	// QPurity: which feed has the fewest benign/junk domains?
	QPurity
	// QOnset: which feed lists domains soonest after campaign start?
	QOnset
	// QCampaignEnd: which feed's last appearance tracks campaign end?
	QCampaignEnd
	// QProportionality: which feed's volumes track real mail?
	QProportionality
)

// String names the question.
func (q Question) String() string {
	switch q {
	case QCoverage:
		return "coverage"
	case QPurity:
		return "purity"
	case QOnset:
		return "onset timing"
	case QCampaignEnd:
		return "campaign-end timing"
	case QProportionality:
		return "proportionality"
	default:
		return "unknown"
	}
}

// Ranked is one feed's standing for a question; lower Rank is better.
type Ranked struct {
	Feed  string
	Rank  int
	Score float64
	// Note explains the score's meaning.
	Note string
}

// Recommend ranks the feeds for a question using the study's own
// measurements — the paper's §5 recommendations, derived from data
// rather than asserted.
func (s *Study) Recommend(q Question) []Ranked {
	var ranked []Ranked
	switch q {
	case QCoverage:
		tagged := analysis.Coverage(s.DS, analysis.ClassTagged)
		union := 0
		seen := map[string]bool{}
		for _, name := range s.DS.Result.Order {
			for d := range analysis.FeedDomains(s.DS, name, analysis.ClassTagged) {
				if !seen[d] {
					seen[d] = true
					union++
				}
			}
		}
		for _, r := range tagged {
			frac := 0.0
			if union > 0 {
				frac = float64(r.Total) / float64(union)
			}
			ranked = append(ranked, Ranked{
				Feed: r.Name, Score: frac,
				Note: fmt.Sprintf("covers %.0f%% of tagged domains", frac*100),
			})
		}
		sortDesc(ranked)
	case QPurity:
		for _, r := range s.Table2() {
			// Positive indicators up, benign contamination down.
			score := (r.DNS+r.HTTP)/2 - 5*(r.Alexa+r.ODP)
			ranked = append(ranked, Ranked{
				Feed: r.Name, Score: score,
				Note: fmt.Sprintf("DNS %.0f%%, HTTP %.0f%%, benign %.1f%%",
					r.DNS*100, r.HTTP*100, (r.Alexa+r.ODP)*100),
			})
		}
		sortDesc(ranked)
	case QOnset:
		// Rank over a feed subset with large common support; the full
		// nine-feed intersection can be tiny in reduced scenarios.
		rows := analysis.FirstAppearance(s.DS,
			[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
		for _, r := range rows {
			if r.Summary.N == 0 {
				continue
			}
			ranked = append(ranked, Ranked{
				Feed: r.Name, Score: r.Summary.Median,
				Note: fmt.Sprintf("median first appearance %.1fh after campaign start", r.Summary.Median),
			})
		}
		sortAsc(ranked)
	case QCampaignEnd:
		for _, r := range s.Figure11() {
			if r.Summary.N == 0 {
				continue
			}
			ranked = append(ranked, Ranked{
				Feed: r.Name, Score: r.Summary.Median,
				Note: fmt.Sprintf("median last-appearance gap %.1fh before campaign end", r.Summary.Median),
			})
		}
		sortAsc(ranked)
	case QProportionality:
		vd := s.Figure7()
		for i, name := range vd.Names {
			if name == analysis.MailColumn {
				continue
			}
			ranked = append(ranked, Ranked{
				Feed: name, Score: vd.Value[i][0],
				Note: fmt.Sprintf("variation distance to real mail %.2f", vd.Value[i][0]),
			})
		}
		sortAsc(ranked)
	}
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked
}

func sortDesc(r []Ranked) {
	sort.SliceStable(r, func(i, j int) bool { return r[i].Score > r[j].Score })
}

func sortAsc(r []Ranked) {
	sort.SliceStable(r, func(i, j int) bool { return r[i].Score < r[j].Score })
}
