package core
