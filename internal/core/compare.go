package core

import (
	"fmt"
	"io"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/report"
	"tasterschoice/internal/stats"
)

// MetricDelta is one headline metric compared across two studies —
// the library form of the ablation benchmarks: run a scenario twice
// with one mechanism toggled and diff what matters.
type MetricDelta struct {
	Name string
	A, B float64
	// Unit is a short label ("%", "h", "x").
	Unit string
}

// Delta returns B − A.
func (m MetricDelta) Delta() float64 { return m.B - m.A }

// Compare computes the headline metrics for two studies (A = baseline,
// B = variant). The metric set mirrors EXPERIMENTS.md's shape checks.
func Compare(a, b *Study) []MetricDelta {
	metric := func(name, unit string, f func(*Study) float64) MetricDelta {
		return MetricDelta{Name: name, A: f(a), B: f(b), Unit: unit}
	}
	return []MetricDelta{
		metric("Hu tagged coverage", "%", func(s *Study) float64 {
			return taggedCoverageFrac(s, "Hu") * 100
		}),
		metric("uribl tagged coverage", "%", func(s *Study) float64 {
			return taggedCoverageFrac(s, "uribl") * 100
		}),
		metric("Bot DNS purity", "%", func(s *Study) float64 {
			for _, r := range s.Table2() {
				if r.Name == "Bot" {
					return r.DNS * 100
				}
			}
			return 0
		}),
		metric("Hu samples / mx1 samples", "x", func(s *Study) float64 {
			hu := float64(s.DS.Feed("Hu").Samples())
			mx := float64(s.DS.Feed("mx1").Samples())
			if mx == 0 {
				return 0
			}
			return hu / mx
		}),
		metric("mx2 vs Mail variation distance", "", func(s *Study) float64 {
			vd := s.Figure7()
			for i, n := range vd.Names {
				if n == "mx2" {
					return vd.Value[i][0]
				}
			}
			return 1
		}),
		metric("mx1 median onset", "h", func(s *Study) float64 {
			rows := analysis.FirstAppearance(s.DS,
				[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
			for _, r := range rows {
				if r.Name == "mx1" && r.Summary.N > 0 {
					return r.Summary.Median
				}
			}
			return 0
		}),
	}
}

// taggedCoverageFrac is a feed's tagged domains over the union.
func taggedCoverageFrac(s *Study, feed string) float64 {
	rows := analysis.Coverage(s.DS, analysis.ClassTagged)
	union := map[string]bool{}
	for _, name := range s.DS.Result.Order {
		for d := range analysis.FeedDomains(s.DS, name, analysis.ClassTagged) {
			union[d] = true
		}
	}
	for _, r := range rows {
		if r.Name == feed {
			return stats.Fraction(r.Total, len(union))
		}
	}
	return 0
}

// WriteComparison renders a Compare result.
func WriteComparison(w io.Writer, aName, bName string, deltas []MetricDelta) {
	rows := make([][]string, len(deltas))
	for i, d := range deltas {
		rows[i] = []string{
			d.Name,
			fmt.Sprintf("%.2f%s", d.A, d.Unit),
			fmt.Sprintf("%.2f%s", d.B, d.Unit),
			fmt.Sprintf("%+.2f", d.Delta()),
		}
	}
	fmt.Fprintf(w, "%s\n", report.Table([]string{"Metric", aName, bName, "Δ"}, rows))
}
