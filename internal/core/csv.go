package core

import (
	"fmt"
	"os"
	"path/filepath"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/report"
)

// Selection returns the greedy feed-acquisition order for a domain
// class (§5: "obtain a set that is as diverse as possible").
func (s *Study) Selection(class analysis.DomainClass) []analysis.SelectionStep {
	return analysis.GreedySelection(s.DS, class)
}

// WriteCSVDir writes every table and figure as a CSV file under dir
// (created if needed) for external plotting.
func (s *Study) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, emit func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("core: writing %s: %w", name, err)
		}
		return f.Close()
	}

	all, live, tagged := s.Table3()
	mLive, mTagged := s.Figure2()
	revRows, revTotal := s.Figure6()

	steps := []struct {
		name string
		emit func(f *os.File) error
	}{
		{"table1_feeds.csv", func(f *os.File) error { return report.CSVFeedSummary(f, s.Table1()) }},
		{"table2_purity.csv", func(f *os.File) error { return report.CSVPurity(f, s.Table2()) }},
		{"table3_coverage.csv", func(f *os.File) error { return report.CSVCoverage(f, all, live, tagged) }},
		{"figure2_live.csv", func(f *os.File) error { return report.CSVMatrix(f, mLive) }},
		{"figure2_tagged.csv", func(f *os.File) error { return report.CSVMatrix(f, mTagged) }},
		{"figure3_volume.csv", func(f *os.File) error { return report.CSVVolume(f, s.Figure3()) }},
		{"figure4_programs.csv", func(f *os.File) error { return report.CSVMatrix(f, s.Figure4()) }},
		{"figure5_affiliates.csv", func(f *os.File) error { return report.CSVMatrix(f, s.Figure5()) }},
		{"figure6_revenue.csv", func(f *os.File) error { return report.CSVRevenue(f, revRows, revTotal) }},
		{"figure7_variation.csv", func(f *os.File) error { return report.CSVPairwise(f, s.Figure7()) }},
		{"figure8_kendall.csv", func(f *os.File) error { return report.CSVPairwise(f, s.Figure8()) }},
		{"figure9_first_appearance.csv", func(f *os.File) error { return report.CSVTiming(f, s.Figure9()) }},
		{"figure10_first_honeypot.csv", func(f *os.File) error { return report.CSVTiming(f, s.Figure10()) }},
		{"figure11_last_appearance.csv", func(f *os.File) error { return report.CSVTiming(f, s.Figure11()) }},
		{"figure12_duration.csv", func(f *os.File) error { return report.CSVTiming(f, s.Figure12()) }},
		{"selection_tagged.csv", func(f *os.File) error {
			return report.CSVSelection(f, s.Selection(analysis.ClassTagged))
		}},
	}
	for _, step := range steps {
		if err := write(step.name, step.emit); err != nil {
			return err
		}
	}
	return nil
}
