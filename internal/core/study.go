// Package core is the library's top-level API: a Study wraps a
// collected dataset and exposes every analysis from the paper, renders
// the full report (every table and figure), and codifies the paper's
// §5 guidance as a data-driven feed advisor.
package core

import (
	"fmt"
	"io"
	"time"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/report"
)

// Study is a feed-comparison study over one dataset.
type Study struct {
	DS *analysis.Dataset
}

// NewStudy wraps a dataset.
func NewStudy(ds *analysis.Dataset) *Study { return &Study{DS: ds} }

// Table1 returns the feed summary (paper Table 1).
func (s *Study) Table1() []analysis.FeedSummary { return analysis.Table1(s.DS) }

// Table2 returns the purity indicators (paper Table 2).
func (s *Study) Table2() []analysis.PurityRow { return analysis.Purity(s.DS) }

// Table3 returns coverage rows for all three domain classes (paper
// Table 3 / Figure 1).
func (s *Study) Table3() (all, live, tagged []analysis.CoverageRow) {
	return analysis.Coverage(s.DS, analysis.ClassAll),
		analysis.Coverage(s.DS, analysis.ClassLive),
		analysis.Coverage(s.DS, analysis.ClassTagged)
}

// Figure2 returns the pairwise intersection matrices (live, tagged).
func (s *Study) Figure2() (live, tagged *analysis.Matrix) {
	return analysis.Intersections(s.DS, analysis.ClassLive),
		analysis.Intersections(s.DS, analysis.ClassTagged)
}

// Figure3 returns the volume-coverage rows.
func (s *Study) Figure3() []analysis.VolumeRow { return analysis.VolumeCoverage(s.DS) }

// Figure4 returns the affiliate-program coverage matrix.
func (s *Study) Figure4() *analysis.Matrix { return analysis.ProgramCoverage(s.DS) }

// Figure5 returns the RX affiliate-identifier coverage matrix.
func (s *Study) Figure5() *analysis.Matrix { return analysis.AffiliateCoverage(s.DS) }

// Figure6 returns revenue-weighted affiliate coverage.
func (s *Study) Figure6() ([]analysis.RevenueRow, float64) {
	return analysis.RevenueCoverage(s.DS)
}

// Figure7 returns pairwise variation distances (incl. Mail).
func (s *Study) Figure7() *analysis.PairwiseDist { return analysis.VariationDistances(s.DS) }

// Figure8 returns pairwise Kendall τ-b (incl. Mail).
func (s *Study) Figure8() *analysis.PairwiseDist { return analysis.KendallTaus(s.DS) }

// Figure9 returns first-appearance timing against the all-feeds
// baseline (minus Bot).
func (s *Study) Figure9() []analysis.TimingRow {
	return analysis.FirstAppearance(s.DS, analysis.Fig9Feeds(s.DS))
}

// Figure10 returns first-appearance timing against the honeypot-only
// baseline.
func (s *Study) Figure10() []analysis.TimingRow {
	return analysis.FirstAppearance(s.DS, analysis.HoneypotFeeds)
}

// Figure11 returns last-appearance deltas over the honeypot feeds.
func (s *Study) Figure11() []analysis.TimingRow {
	return analysis.LastAppearance(s.DS, analysis.HoneypotFeeds)
}

// Figure12 returns duration-estimate deltas over the honeypot feeds.
func (s *Study) Figure12() []analysis.TimingRow {
	return analysis.Duration(s.DS, analysis.HoneypotFeeds)
}

// WriteReport prints every table and figure to w, in paper order.
func (s *Study) WriteReport(w io.Writer) error {
	section := func(title, body string) {
		fmt.Fprintf(w, "== %s ==\n%s\n", title, body)
	}
	section("Table 1: feed summary", report.FeedSummaryTable(s.Table1()))
	section("Table 2: purity indicators", report.PurityTable(s.Table2()))
	all, live, tagged := s.Table3()
	section("Table 3: coverage (total / exclusive)", report.CoverageTable(all, live, tagged))
	section("Figure 1: distinct vs exclusive (live)", report.ExclusiveScatter(live))
	section("Figure 1: distinct vs exclusive (tagged)", report.ExclusiveScatter(tagged))
	mLive, mTagged := s.Figure2()
	section("Figure 2: pairwise intersection (live)", report.MatrixTable(mLive))
	section("Figure 2: pairwise intersection (tagged)", report.MatrixTable(mTagged))
	section("Figure 3: volume coverage", report.VolumeBars(s.Figure3()))
	section("Figure 4: affiliate-program coverage", report.MatrixTable(s.Figure4()))
	section("Figure 5: RX affiliate coverage", report.MatrixTable(s.Figure5()))
	rows, total := s.Figure6()
	section("Figure 6: revenue-weighted affiliate coverage", report.RevenueBars(rows, total))
	section("Figure 7: pairwise variation distance", report.PairwiseTable(s.Figure7()))
	section("Figure 8: pairwise Kendall tau-b", report.PairwiseTable(s.Figure8()))
	section("Figure 9: first appearance (all-feed baseline, minus Bot)", report.TimingTable(s.Figure9()))
	section("Figure 10: first appearance (honeypot baseline)", report.TimingTable(s.Figure10()))
	section("Figure 11: last appearance vs campaign end", report.TimingTable(s.Figure11()))
	section("Figure 12: domain lifetime vs campaign duration", report.TimingTable(s.Figure12()))
	section("Greedy feed acquisition order (tagged domains, §5)",
		report.SelectionTable(s.Selection(analysis.ClassTagged)))
	section("Tagged domains by goods category (extension)",
		report.CategoryTable(analysis.CategoryBreakdown(s.DS)))
	section("Campaign reconstruction from single feeds (extension)",
		report.ReconstructionTable(analysis.ReconstructAll(s.DS, 12*time.Hour)))
	section("Category volume shares per feed vs real mail (extension; §5's extrapolation warning)",
		report.SharesTable(analysis.CategoryShares(s.DS)))
	return nil
}
