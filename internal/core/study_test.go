package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/simulate"
)

var (
	studyOnce sync.Once
	studyVal  *Study
)

func testStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal = NewStudy(simulate.Small(7).MustRun())
	})
	return studyVal
}

func TestWriteReportContainsEverything(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12",
		"Hu", "uribl", "mx2", "Bot", "Hyb", "Mail",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(out))
	}
}

func TestRecommendCoverage(t *testing.T) {
	s := testStudy(t)
	ranked := s.Recommend(QCoverage)
	if len(ranked) != 10 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Feed != "Hu" {
		t.Errorf("best coverage feed = %s, want Hu (paper §5)", ranked[0].Feed)
	}
	for i, r := range ranked {
		if r.Rank != i+1 {
			t.Errorf("rank %d at index %d", r.Rank, i)
		}
		if i > 0 && r.Score > ranked[i-1].Score {
			t.Errorf("coverage ranking not descending at %d", i)
		}
	}
}

func TestRecommendPurity(t *testing.T) {
	s := testStudy(t)
	ranked := s.Recommend(QPurity)
	pos := map[string]int{}
	for _, r := range ranked {
		pos[r.Feed] = r.Rank
	}
	// Blacklists must outrank the poisoned feeds.
	for _, bl := range []string{"dbl", "uribl"} {
		for _, bad := range []string{"Bot", "mx2"} {
			if pos[bl] >= pos[bad] {
				t.Errorf("%s (rank %d) should outrank %s (rank %d)", bl, pos[bl], bad, pos[bad])
			}
		}
	}
}

func TestRecommendOnset(t *testing.T) {
	s := testStudy(t)
	ranked := s.Recommend(QOnset)
	if len(ranked) == 0 {
		t.Fatal("no onset ranking")
	}
	best := ranked[0].Feed
	if best != "Hu" && best != "dbl" && best != "uribl" {
		t.Errorf("fastest onset feed = %s, want a human/blacklist feed", best)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score < ranked[i-1].Score {
			t.Errorf("onset ranking not ascending at %d", i)
		}
	}
}

func TestRecommendProportionality(t *testing.T) {
	s := testStudy(t)
	ranked := s.Recommend(QProportionality)
	if len(ranked) != 6 {
		t.Fatalf("ranked = %d, want the six volume feeds", len(ranked))
	}
	for _, r := range ranked {
		if r.Feed == analysis.MailColumn {
			t.Error("Mail ranked against itself")
		}
	}
	// Ac2 is the paper's most-unlike-everything feed.
	if last := ranked[len(ranked)-1].Feed; last != "Ac2" {
		t.Logf("note: worst proportionality feed = %s (paper: Ac2)", last)
	}
}

func TestRecommendCampaignEnd(t *testing.T) {
	s := testStudy(t)
	ranked := s.Recommend(QCampaignEnd)
	if len(ranked) != 5 {
		t.Fatalf("ranked = %d, want the five honeypot feeds", len(ranked))
	}
}

func TestQuestionStrings(t *testing.T) {
	for _, q := range []Question{QCoverage, QPurity, QOnset, QCampaignEnd, QProportionality} {
		if q.String() == "unknown" {
			t.Errorf("question %d has no name", q)
		}
	}
}

func TestCompare(t *testing.T) {
	base := testStudy(t)
	// Variant: no poisoning.
	scen := simulate.Small(7)
	scen.Collection.PoisonBotArrivals = 0
	scen.Collection.PoisonMX2Arrivals = 0
	variant := NewStudy(scen.MustRun())

	deltas := Compare(base, variant)
	if len(deltas) == 0 {
		t.Fatal("no metrics")
	}
	byName := map[string]MetricDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	bot := byName["Bot DNS purity"]
	if bot.B <= bot.A {
		t.Fatalf("disabling poisoning should raise Bot DNS purity: %+v", bot)
	}
	if bot.Delta() <= 0 {
		t.Fatalf("delta: %+v", bot)
	}

	var buf bytes.Buffer
	WriteComparison(&buf, "base", "no-poison", deltas)
	if !strings.Contains(buf.String(), "Bot DNS purity") {
		t.Fatalf("rendered comparison missing metric:\n%s", buf.String())
	}
}

func TestSelectionInStudy(t *testing.T) {
	s := testStudy(t)
	steps := s.Selection(analysis.ClassTagged)
	if len(steps) != 10 || steps[0].Feed != "Hu" {
		t.Fatalf("selection: %+v", steps[:1])
	}
}

func TestWriteCSVDir(t *testing.T) {
	s := testStudy(t)
	dir := t.TempDir()
	if err := s.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 15 {
		t.Fatalf("only %d CSV files", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", e.Name())
		}
	}
}
