package mailmsg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse ensures the message parser never panics and that anything
// it accepts re-serializes and re-parses stably.
func FuzzParse(f *testing.F) {
	f.Add("From: a@b.com\r\nSubject: hi\r\n\r\nbody http://x.com/\r\n")
	f.Add("Subject: folded\r\n\tcontinuation\r\n\r\n")
	f.Add("From: a@b.com\n\nbare lf body\n")
	f.Add(":\r\n\r\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		m, err := Parse(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted input must round-trip through our own serializer.
		again, err := Parse(bytes.NewReader(m.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if again.Body != strings.ReplaceAll(m.Body, "\r\n", "\n") && again.Body != m.Body {
			t.Fatalf("body unstable: %q vs %q", m.Body, again.Body)
		}
	})
}

// FuzzExtractURLs ensures URL extraction never panics and always
// returns distinct entries.
func FuzzExtractURLs(f *testing.F) {
	f.Add("see http://a.com and www.b.org, also <a href=\"http://c.net/x\">z</a>")
	f.Add("http://")
	f.Add("www.")
	f.Fuzz(func(t *testing.T, body string) {
		urls := ExtractURLs(body)
		seen := map[string]bool{}
		for _, u := range urls {
			if seen[u] {
				t.Fatalf("duplicate URL %q", u)
			}
			seen[u] = true
		}
	})
}
