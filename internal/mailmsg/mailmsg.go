// Package mailmsg models the e-mail messages flowing through the
// simulated spam ecosystem: construction, RFC 5322-style serialization
// and parsing, and extraction of advertised URLs from message bodies.
//
// Feeds in the paper differ in what they report — some provide full
// message content, some only URLs, some only registered domains. The
// richer collectors in this reproduction therefore operate on full
// Message values and reduce them with ExtractURLs + domain.Rules, the
// same pipeline a real feed operator runs.
package mailmsg

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Message is a simplified e-mail message: a fixed set of common headers
// plus free-form extras, and a plain-text body that may carry URLs.
type Message struct {
	From    string
	To      string
	Subject string
	Date    time.Time
	// MessageID uniquely identifies the message ("<id@host>").
	MessageID string
	// Extra holds additional headers (canonical-cased keys).
	Extra map[string]string
	Body  string
}

// dateLayout is the RFC 5322 date format.
const dateLayout = "Mon, 02 Jan 2006 15:04:05 -0700"

// foldLimit is the RFC 5322 recommended line length for headers; long
// header values are folded onto continuation lines at spaces.
const foldLimit = 78

// WriteTo serializes the message in RFC 5322 style (CRLF line endings,
// folded long headers, blank line between headers and body). It
// implements io.WriterTo.
func (m *Message) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	writeHeader := func(k, v string) {
		if v == "" {
			return
		}
		line := k + ": " + sanitizeHeader(v)
		for len(line) > foldLimit {
			// Fold at the last space before the limit; if none, emit
			// the long line unfolded rather than corrupt a token.
			cut := strings.LastIndexByte(line[:foldLimit], ' ')
			if cut <= len(k)+1 {
				break
			}
			buf.WriteString(line[:cut])
			buf.WriteString("\r\n")
			line = "\t" + line[cut+1:]
		}
		buf.WriteString(line)
		buf.WriteString("\r\n")
	}
	writeHeader("From", m.From)
	writeHeader("To", m.To)
	writeHeader("Subject", m.Subject)
	if !m.Date.IsZero() {
		writeHeader("Date", m.Date.UTC().Format(dateLayout))
	}
	writeHeader("Message-ID", m.MessageID)
	// Deterministic ordering for extra headers.
	keys := make([]string, 0, len(m.Extra))
	for k := range m.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeHeader(k, m.Extra[k])
	}
	buf.WriteString("\r\n")
	body := strings.ReplaceAll(m.Body, "\r\n", "\n")
	buf.WriteString(strings.ReplaceAll(body, "\n", "\r\n"))
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// sanitizeHeader strips CR/LF to prevent header injection.
func sanitizeHeader(v string) string {
	v = strings.ReplaceAll(v, "\r", " ")
	return strings.ReplaceAll(v, "\n", " ")
}

// Bytes returns the serialized message.
func (m *Message) Bytes() []byte {
	var buf bytes.Buffer
	m.WriteTo(&buf) //nolint:errcheck // bytes.Buffer cannot fail
	return buf.Bytes()
}

// String returns the serialized message as a string.
func (m *Message) String() string { return string(m.Bytes()) }

// Parse reads a serialized message back into a Message. Unknown headers
// land in Extra. Header continuation lines (leading whitespace) are
// folded with a single space. Parse tolerates both CRLF and LF endings.
func Parse(r io.Reader) (*Message, error) {
	br := bufio.NewReader(r)
	m := &Message{Extra: make(map[string]string)}
	var lastKey string
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			if err == io.EOF {
				return nil, fmt.Errorf("mailmsg: missing header/body separator")
			}
			return nil, err
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break // header/body separator
		}
		if trimmed[0] == ' ' || trimmed[0] == '\t' {
			if lastKey == "" {
				return nil, fmt.Errorf("mailmsg: continuation line before any header")
			}
			m.setHeader(lastKey, m.getHeader(lastKey)+" "+strings.TrimSpace(trimmed))
			continue
		}
		k, v, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("mailmsg: malformed header line %q", trimmed)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		lastKey = k
		m.setHeader(k, v)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	m.Body = strings.ReplaceAll(string(body), "\r\n", "\n")
	if len(m.Extra) == 0 {
		m.Extra = nil
	}
	return m, nil
}

func (m *Message) setHeader(k, v string) {
	switch strings.ToLower(k) {
	case "from":
		m.From = v
	case "to":
		m.To = v
	case "subject":
		m.Subject = v
	case "date":
		if t, err := time.Parse(dateLayout, v); err == nil {
			m.Date = t.UTC()
		}
	case "message-id":
		m.MessageID = v
	default:
		if m.Extra == nil {
			m.Extra = make(map[string]string)
		}
		m.Extra[k] = v
	}
}

func (m *Message) getHeader(k string) string {
	switch strings.ToLower(k) {
	case "from":
		return m.From
	case "to":
		return m.To
	case "subject":
		return m.Subject
	case "message-id":
		return m.MessageID
	default:
		return m.Extra[k]
	}
}

// ExtractURLs returns the URLs found in the body, in order of first
// appearance, de-duplicated. It recognizes http:// and https:// URLs in
// plain text and inside href="..." attributes, plus bare www.-prefixed
// hosts (reported as scheme-less URLs), matching how feed operators
// harvest spam-advertised links.
func ExtractURLs(body string) []string {
	var urls []string
	seen := make(map[string]bool)
	add := func(u string) {
		u = trimURLPunct(u)
		if u == "" || seen[u] {
			return
		}
		seen[u] = true
		urls = append(urls, u)
	}
	for i := 0; i < len(body); {
		rest := body[i:]
		switch {
		case hasFoldPrefix(rest, "http://"), hasFoldPrefix(rest, "https://"):
			end := urlEnd(rest)
			add(rest[:end])
			i += end
		case hasFoldPrefix(rest, "href=\""):
			start := i + len("href=\"")
			if j := strings.IndexByte(body[start:], '"'); j >= 0 {
				add(body[start : start+j])
				i = start + j + 1
			} else {
				i = len(body)
			}
		case hasFoldPrefix(rest, "www.") && (i == 0 || isURLBoundary(body[i-1])):
			end := urlEnd(rest)
			add(rest[:end])
			i += end
		default:
			i++
		}
	}
	return urls
}

// urlEnd returns the length of the URL token starting at the beginning
// of s: it ends at whitespace, quotes, angle brackets, or end of input.
func urlEnd(s string) int {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r', '"', '\'', '<', '>', ')', ']', '}':
			return i
		}
	}
	return len(s)
}

// trimURLPunct removes trailing punctuation commonly adjacent to URLs
// in prose ("visit http://x.com."), which is not part of the URL.
func trimURLPunct(u string) string {
	return strings.TrimRight(u, ".,;:!?")
}

// isURLBoundary reports whether c can precede the start of a bare URL.
func isURLBoundary(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '(', '[', '<', '"', '\'', '=', ',', ':', ';':
		return true
	}
	return false
}

// hasFoldPrefix is a case-insensitive strings.HasPrefix for ASCII.
func hasFoldPrefix(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}
