package mailmsg

import (
	"bytes"
	"testing"
	"time"
)

func benchMessage() *Message {
	return &Message{
		From:    "x@spam.example",
		To:      "victim@webmail.example",
		Subject: "Great offer inside",
		Date:    time.Date(2010, 8, 15, 12, 0, 0, 0, time.UTC),
		Body: "Check http://cheappills77.com/p/c12 or http://replica-hub.net/p/c13\n" +
			"also <img src=\"http://img-host.example/x.png\"> and www.bonus.org today",
	}
}

func BenchmarkSerialize(b *testing.B) {
	m := benchMessage()
	for i := 0; i < b.N; i++ {
		_ = m.Bytes()
	}
}

func BenchmarkParse(b *testing.B) {
	raw := benchMessage().Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractURLs(b *testing.B) {
	body := benchMessage().Body
	for i := 0; i < b.N; i++ {
		_ = ExtractURLs(body)
	}
}
