package mailmsg

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Message {
	return &Message{
		From:      "spammer@botnet.example",
		To:        "victim@webmail.example",
		Subject:   "Cheap meds here",
		Date:      time.Date(2010, 8, 15, 12, 30, 0, 0, time.UTC),
		MessageID: "<abc123@botnet.example>",
		Extra:     map[string]string{"X-Campaign": "c42"},
		Body:      "Buy now at http://cheappills.com/buy?aff=7\nThanks",
	}
}

func TestRoundTrip(t *testing.T) {
	m := sample()
	parsed, err := Parse(bytes.NewReader(m.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.From != m.From || parsed.To != m.To || parsed.Subject != m.Subject {
		t.Fatalf("headers differ: %+v", parsed)
	}
	if !parsed.Date.Equal(m.Date) {
		t.Fatalf("date %v != %v", parsed.Date, m.Date)
	}
	if parsed.MessageID != m.MessageID {
		t.Fatalf("message-id %q", parsed.MessageID)
	}
	if parsed.Extra["X-Campaign"] != "c42" {
		t.Fatalf("extra headers: %v", parsed.Extra)
	}
	if parsed.Body != m.Body {
		t.Fatalf("body %q != %q", parsed.Body, m.Body)
	}
}

func TestSerializationUsesCRLF(t *testing.T) {
	raw := sample().String()
	head, _, ok := strings.Cut(raw, "\r\n\r\n")
	if !ok {
		t.Fatal("no CRLF header/body separator")
	}
	for _, line := range strings.Split(head, "\r\n") {
		if strings.Contains(line, "\n") {
			t.Fatalf("bare LF in header section: %q", line)
		}
	}
}

func TestHeaderInjectionSanitized(t *testing.T) {
	m := &Message{Subject: "evil\r\nBcc: target@x.com", Body: "hi"}
	raw := m.String()
	if strings.Contains(raw, "Bcc: target") && strings.Contains(raw, "\r\nBcc:") {
		t.Fatal("header injection not sanitized")
	}
	parsed, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed.Extra["Bcc"]; ok {
		t.Fatal("injected header materialized")
	}
}

func TestParseLFOnly(t *testing.T) {
	raw := "From: a@b.com\nSubject: hi\n\nbody line\n"
	m, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.From != "a@b.com" || m.Subject != "hi" || m.Body != "body line\n" {
		t.Fatalf("parsed: %+v", m)
	}
}

func TestParseContinuationLine(t *testing.T) {
	raw := "Subject: part one\r\n\tpart two\r\n\r\nbody"
	m, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.Subject != "part one part two" {
		t.Fatalf("Subject = %q", m.Subject)
	}
}

func TestParseErrors(t *testing.T) {
	for name, raw := range map[string]string{
		"no separator":       "From: a@b.com\r\n",
		"malformed header":   "NotAHeader\r\n\r\nbody",
		"leading whitespace": " folded: without header\r\n\r\nbody",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(raw)); err == nil {
				t.Fatalf("expected error for %q", raw)
			}
		})
	}
}

func TestParseEmptyBody(t *testing.T) {
	m, err := Parse(strings.NewReader("From: a@b.com\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Body != "" {
		t.Fatalf("Body = %q", m.Body)
	}
}

func TestExtractURLsPlain(t *testing.T) {
	body := "Visit http://cheappills.com/buy now, or https://Replica.Example.ORG/sale."
	got := ExtractURLs(body)
	want := []string{"http://cheappills.com/buy", "https://Replica.Example.ORG/sale"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractURLs = %v, want %v", got, want)
	}
}

func TestExtractURLsHref(t *testing.T) {
	body := `<a href="http://store.com/x">click</a> and <a href="http://other.com/y">here</a>`
	got := ExtractURLs(body)
	want := []string{"http://store.com/x", "http://other.com/y"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractURLs = %v, want %v", got, want)
	}
}

func TestExtractURLsBareWWW(t *testing.T) {
	body := "go to www.pills.com for deals"
	got := ExtractURLs(body)
	if len(got) != 1 || got[0] != "www.pills.com" {
		t.Fatalf("ExtractURLs = %v", got)
	}
	// Not a boundary: should not match inside a word.
	if got := ExtractURLs("xwww.pills.com"); len(got) != 0 {
		t.Fatalf("matched mid-word: %v", got)
	}
	// Start of body is a boundary.
	if got := ExtractURLs("www.first.com rest"); len(got) != 1 {
		t.Fatalf("start-of-body www: %v", got)
	}
}

func TestExtractURLsDedup(t *testing.T) {
	body := "http://a.com http://a.com http://b.com"
	got := ExtractURLs(body)
	want := []string{"http://a.com", "http://b.com"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractURLs = %v", got)
	}
}

func TestExtractURLsTrailingPunct(t *testing.T) {
	got := ExtractURLs("see http://a.com/page.")
	if len(got) != 1 || got[0] != "http://a.com/page" {
		t.Fatalf("ExtractURLs = %v", got)
	}
}

func TestExtractURLsQuoteTerminated(t *testing.T) {
	got := ExtractURLs(`<img src="http://img.host.com/x.png"> text`)
	if len(got) != 1 || got[0] != "http://img.host.com/x.png" {
		t.Fatalf("ExtractURLs = %v", got)
	}
}

func TestExtractURLsEmpty(t *testing.T) {
	if got := ExtractURLs("no links here"); len(got) != 0 {
		t.Fatalf("ExtractURLs = %v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: serialize → parse preserves subject and body for
	// header-safe subjects and CR-free bodies.
	f := func(subjRaw, bodyRaw []byte) bool {
		subj := strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return -1
			}
			return r
		}, string(subjRaw))
		subj = strings.TrimSpace(subj)
		body := strings.Map(func(r rune) rune {
			if r == '\r' {
				return -1
			}
			if r != '\n' && (r < 32 || r > 126) {
				return -1
			}
			return r
		}, string(bodyRaw))
		m := &Message{From: "a@b.com", Subject: subj, Body: body}
		parsed, err := Parse(bytes.NewReader(m.Bytes()))
		if err != nil {
			return false
		}
		return parsed.Subject == subj && parsed.Body == body
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFolding(t *testing.T) {
	long := strings.Repeat("wordy segment ", 12) // ~170 chars
	m := &Message{From: "a@b.com", Subject: strings.TrimSpace(long), Body: "x"}
	raw := m.String()
	head, _, _ := strings.Cut(raw, "\r\n\r\n")
	for _, line := range strings.Split(head, "\r\n") {
		if len(line) > 90 {
			t.Fatalf("unfolded header line (%d chars): %q", len(line), line)
		}
	}
	// The folded header must parse back to the original subject.
	parsed, err := Parse(bytes.NewReader(m.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Subject != m.Subject {
		t.Fatalf("folded subject corrupted:\n%q\n%q", m.Subject, parsed.Subject)
	}
}

func TestHeaderFoldingUnbreakableToken(t *testing.T) {
	// A single unbreakable token longer than the limit is emitted
	// as-is rather than corrupted.
	token := strings.Repeat("x", 120)
	m := &Message{Subject: token, Body: ""}
	parsed, err := Parse(bytes.NewReader(m.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Subject != token {
		t.Fatalf("token corrupted: %q", parsed.Subject)
	}
}
