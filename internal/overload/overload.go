// Package overload is the serving plane's admission-control and
// graceful-degradation layer: bounded work queues with CoDel-style
// queue-deadline shedding, token-bucket rate limits, per-client
// fairness buckets, priority classes, and deadline-propagation
// helpers.
//
// The paper's real-world counterparts — the dbl/uribl blacklist zones,
// the MX honeypots — survive because they keep answering under
// resolver floods and spam storms. Query and delivery load in that
// world is heavy-tailed and bursty, exactly the regime where load
// *shedding*, not queuing, preserves service: a server that accepts
// unbounded work degrades for everyone at once, while one that sheds
// the excess cheaply keeps latency bounded for the traffic it accepts.
// This package centralizes the shed policy so dnsbl, smtpd, feedsync,
// webhost and the distsweep coordinator all degrade the same way.
//
// Determinism: nothing here consumes ambient randomness or hidden
// clocks. Every decision is a pure function of the injected Clock and
// the configured rates, so a simclock-driven test replays the exact
// shed sequence, and the chaos suite can assert that shedding never
// perturbs the deterministic engine (goldens stay byte-identical).
// Instrumentation flows through internal/obs and only observes — a
// gate with metrics admits exactly what one without them would.
package overload

import (
	"sync"
	"time"
)

// Clock supplies the current time. Production servers pass the wall
// clock; deterministic tests drive a simclock-anchored stub.
type Clock func() time.Time

// WallClock is the conventional production clock.
func WallClock() time.Time {
	return time.Now() //lint:allow wallclock -- the one sanctioned wall-clock seam; tests inject stubs
}

// clockOr returns c when non-nil, else the wall clock.
func clockOr(c Clock) Clock {
	if c != nil {
		return c
	}
	return WallClock
}

// Priority classes order traffic under pressure: control-plane traffic
// (oracle lookups, feedsync subscriptions) outranks bulk queries, so
// when capacity runs out the bulk tier sheds first and the critical
// tier last.
type Priority int

const (
	// Bulk is best-effort traffic: resolver query floods, crawl
	// fetches. First to shed.
	Bulk Priority = iota
	// Normal is standard interactive traffic.
	Normal
	// Critical is control-plane traffic — oracle checks, feedsync
	// replication, coordinator leases. Last to shed.
	Critical
	// NumPriorities sizes per-priority arrays.
	NumPriorities
)

// String implements fmt.Stringer (used as a metric label).
func (p Priority) String() string {
	switch p {
	case Bulk:
		return "bulk"
	case Normal:
		return "normal"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// headroomNum/headroomDen give each priority its share of the
// concurrency limit in exact integer arithmetic: bulk traffic sheds
// once the gate is 3/4 full, normal at 9/10, critical only at the hard
// limit. The reserve kept from lower tiers is what lets control
// traffic through a flood.
var headroomNum = [NumPriorities]int{3, 9, 1}
var headroomDen = [NumPriorities]int{4, 10, 1}

// Share returns priority p's portion of a total capacity of max (at
// least 1, so a tiny limit still serves): the in-flight cap inside a
// Gate, and the queue-depth cap servers apply when enqueuing work at
// this priority.
func (p Priority) Share(max int) int {
	if p < 0 || p >= NumPriorities {
		p = Bulk
	}
	l := max * headroomNum[p] / headroomDen[p]
	if l < 1 {
		l = 1
	}
	return l
}

// GateConfig parameterises a Gate. The zero value admits everything
// (no limits), so wiring a gate is never worse than not having one.
type GateConfig struct {
	// MaxConcurrent caps in-flight admissions (0 = unlimited). Priority
	// classes shed at fractions of this cap (bulk 3/4, normal 9/10,
	// critical 1/1), reserving headroom for control traffic.
	MaxConcurrent int
	// Rate and Burst configure an optional token bucket per priority
	// class, in admissions per second (Rate 0 = unlimited for that
	// class). Burst 0 defaults to Rate.
	Rate  [NumPriorities]float64
	Burst [NumPriorities]float64
	// FairBuckets enables per-client fairness: clients hash (seeded)
	// into this many buckets, each with its own FairRate/FairBurst
	// token bucket, so one abusive client exhausts only its bucket.
	// 0 disables fairness.
	FairBuckets int
	// FairRate and FairBurst shape each fairness bucket (per second).
	FairRate  float64
	FairBurst float64
	// Seed drives the fairness hash so bucket assignment is
	// deterministic per run yet not guessable across deployments.
	Seed uint64
	// Clock supplies admission timestamps (default wall clock).
	Clock Clock
	// Metrics observes the gate; the zero value is inert.
	Metrics GateMetrics
}

// Gate is a non-blocking admission controller: callers ask once, and a
// refusal is a shed — the caller answers with its protocol's cheap
// "try later" (SERVFAIL, 421, 503) instead of queuing unboundedly.
// It is safe for concurrent use.
type Gate struct {
	cfg     GateConfig
	clock   Clock
	buckets [NumPriorities]*TokenBucket
	fair    *Fairness

	mu       sync.Mutex
	inflight int
}

// NewGate builds a gate from cfg.
func NewGate(cfg GateConfig) *Gate {
	g := &Gate{cfg: cfg, clock: clockOr(cfg.Clock)}
	for p := Priority(0); p < NumPriorities; p++ {
		if cfg.Rate[p] > 0 {
			burst := cfg.Burst[p]
			if burst <= 0 {
				burst = cfg.Rate[p]
			}
			g.buckets[p] = NewTokenBucket(cfg.Rate[p], burst, g.clock)
		}
	}
	if cfg.FairBuckets > 0 && cfg.FairRate > 0 {
		burst := cfg.FairBurst
		if burst <= 0 {
			burst = cfg.FairRate
		}
		g.fair = NewFairness(cfg.FairBuckets, cfg.FairRate, burst, cfg.Seed, g.clock)
	}
	return g
}

// InFlight returns the number of admissions currently held.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// Allow performs the rate and fairness checks for (p, client) without
// taking a concurrency slot — the per-message check for protocols
// whose session is already admitted (an SMTP DATA under an admitted
// connection). A nil gate allows everything.
func (g *Gate) Allow(p Priority, client string) bool {
	if g == nil {
		return true
	}
	if g.fair != nil && !g.fair.Allow(client) {
		g.cfg.Metrics.shed(p, ShedFairness)
		return false
	}
	if b := g.bucketFor(p); b != nil && !b.Allow(1) {
		g.cfg.Metrics.shed(p, ShedRate)
		return false
	}
	g.cfg.Metrics.admitted(p)
	return true
}

// bucketFor returns the token bucket guarding priority p (nil when the
// class is unlimited).
func (g *Gate) bucketFor(p Priority) *TokenBucket {
	if p < 0 || p >= NumPriorities {
		p = Bulk
	}
	return g.buckets[p]
}

// Admit asks for a concurrency slot at priority p for the given
// client. On success it returns ok=true and a release function the
// caller MUST invoke when the work completes; on shed it returns
// ok=false and a nil release. A nil gate admits everything (release is
// still non-nil and safe to call).
func (g *Gate) Admit(p Priority, client string) (release func(), ok bool) {
	if g == nil {
		return func() {}, true
	}
	if g.fair != nil && !g.fair.Allow(client) {
		g.cfg.Metrics.shed(p, ShedFairness)
		return nil, false
	}
	if b := g.bucketFor(p); b != nil && !b.Allow(1) {
		g.cfg.Metrics.shed(p, ShedRate)
		return nil, false
	}
	g.mu.Lock()
	if g.cfg.MaxConcurrent > 0 && g.inflight >= p.Share(g.cfg.MaxConcurrent) {
		g.mu.Unlock()
		g.cfg.Metrics.shed(p, ShedCapacity)
		return nil, false
	}
	g.inflight++
	g.cfg.Metrics.InFlight.Set(int64(g.inflight))
	g.mu.Unlock()
	g.cfg.Metrics.admitted(p)
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inflight--
			g.cfg.Metrics.InFlight.Set(int64(g.inflight))
			g.mu.Unlock()
		})
	}, true
}

// Pressure returns the gate's load as a fraction of MaxConcurrent in
// [0, 1] (0 when unlimited): protocols that tempfail under pressure
// rather than shedding whole sessions key off this.
func (g *Gate) Pressure() float64 {
	if g == nil || g.cfg.MaxConcurrent <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.inflight) / float64(g.cfg.MaxConcurrent)
}
