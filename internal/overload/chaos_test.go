// Chaos suite: the serving plane under seeded synthetic overload.
// Every scenario drives a real server over real sockets with a
// faultnet flood at a multiple of its configured capacity, and the
// claims are always the same three: answers that are accepted stay
// byte-identical to the unloaded goldens, accepted-request latency
// stays bounded while excess load is shed with protocol-native
// errors, and a drain started mid-flood completes cleanly without
// leaking goroutines.
//
// This file measures real wall-clock latency of real sockets, so its
// clock reads are sanctioned with wallclock directives below — the
// point of the suite is precisely the behavior the simclock cannot
// see.
package overload_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/faultnet"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/feedsync"
	"tasterschoice/internal/obs"
	"tasterschoice/internal/overload"
	"tasterschoice/internal/simclock"
	"tasterschoice/internal/smtpd"
)

// wallNow is this suite's sanctioned wall-clock read: chaos tests
// measure the latency of real packets on real sockets.
func wallNow() time.Time {
	return time.Now() //lint:allow wallclock -- chaos suite measures real socket latency under a real flood
}

// wallSleep paces real-socket work; nothing deterministic depends on
// it.
func wallSleep(d time.Duration) {
	time.Sleep(d) //lint:allow wallclock -- chaos suite paces real sockets, not simulated time
}

// chaosFeed builds a deterministic blacklist of n domains.
func chaosFeed(n int) *feeds.Feed {
	f := feeds.New("dbl", feeds.KindBlacklist, false, false)
	for i := 0; i < n; i++ {
		f.ObserveOnce(simclock.PaperStart, domain.Name(chaosDomain(i)))
	}
	return f
}

func chaosDomain(i int) string { return fmt.Sprintf("spamdomain%03d.com", i) }

const chaosZone = "dbl.example"

// startFloodTarget wires a queued, gated DNSBL server the way
// cmd/dnsblserve -workers does, with a bulk-class rate low enough
// that a flood is guaranteed to shed.
func startFloodTarget(t *testing.T) (*dnsbl.Server, net.Addr, overload.GateMetrics) {
	t.Helper()
	reg := obs.NewRegistry()
	gm := overload.NewGateMetrics(reg, "dnsbl")
	srv := dnsbl.NewServer(chaosZone, dnsbl.FeedZone{Feed: chaosFeed(64)})
	srv.Workers = 4
	srv.QueueDepth = 64
	srv.QueueMetrics = overload.NewQueueMetrics(reg, "dnsbl")
	srv.Admission = overload.NewGate(overload.GateConfig{
		Rate:    [overload.NumPriorities]float64{overload.Bulk: 2000},
		Burst:   [overload.NumPriorities]float64{overload.Bulk: 64},
		Seed:    1709,
		Metrics: gm,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr, gm
}

// packQuery builds one raw DNS query with a fixed ID so replies are
// byte-comparable across runs.
func packQuery(t *testing.T, name string, qtype uint16, id uint16) []byte {
	t.Helper()
	raw, err := (&dnsbl.Message{
		Header:    dnsbl.Header{ID: id},
		Questions: []dnsbl.Question{{Name: name, Type: qtype, Class: dnsbl.ClassIN}},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// exchange sends one raw query and returns the raw reply bytes and
// the time the round trip took.
func exchange(addr net.Addr, raw []byte) (reply []byte, took time.Duration, err error) {
	c, err := net.Dial("udp", addr.String())
	if err != nil {
		return nil, 0, err
	}
	defer c.Close()
	start := wallNow()
	if _, err := c.Write(raw); err != nil {
		return nil, 0, err
	}
	c.SetReadDeadline(start.Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 512)
	n, err := c.Read(buf)
	if err != nil {
		return nil, 0, err
	}
	return buf[:n:n], wallNow().Sub(start), nil
}

// isShedReply reports whether a raw DNS reply is an overload shed
// (header-only SERVFAIL or REFUSED) rather than a served answer.
// Golden replies are NOERROR or NXDOMAIN, so the two sets never
// overlap.
func isShedReply(raw []byte) bool {
	m, err := dnsbl.Unpack(raw)
	if err != nil {
		return false
	}
	return m.Header.RCode == dnsbl.RCodeServFail || m.Header.RCode == dnsbl.RCodeRefused
}

// goldenProbes are the fixed query set whose replies must be
// byte-identical before, during and after a flood: TXT queries ride
// the Normal class, so the flood (bulk A queries) cannot starve them.
func goldenProbes(t *testing.T) [][]byte {
	t.Helper()
	var probes [][]byte
	for i := 0; i < 4; i++ {
		probes = append(probes,
			packQuery(t, chaosDomain(i)+"."+chaosZone, dnsbl.TypeTXT, uint16(0x5000+i)))
	}
	probes = append(probes,
		packQuery(t, "innocent.example."+chaosZone, dnsbl.TypeTXT, 0x5ff0))
	return probes
}

// TestChaosOverloadDNSBLFloodGolden is the flagship: a seeded UDP
// flood at an offered load far past the configured bulk budget, with
// concurrent golden probes. Accepted answers must be byte-identical
// to the unloaded goldens, accepted-probe latency must stay bounded,
// and the gate must actually shed (otherwise the test proved
// nothing).
func TestChaosOverloadDNSBLFloodGolden(t *testing.T) {
	srv, addr, gm := startFloodTarget(t)
	defer srv.Close()

	probes := goldenProbes(t)
	golden := make([][]byte, len(probes))
	for i, q := range probes {
		reply, _, err := exchange(addr, q)
		if err != nil {
			t.Fatalf("unloaded probe %d: %v", i, err)
		}
		golden[i] = reply
	}

	// The flood: bulk A queries from 8 seeded workers, paced so the
	// offered load sustains ~20k queries/s — 10× the 2000/s bulk
	// budget — for roughly half a second, long enough for the golden
	// probes to sample the server under genuine pressure.
	const floodN = 10000
	flood := faultnet.Flood{Seed: 1709, Workers: 8, Gap: 400 * time.Microsecond}
	floodCtx, cancelFlood := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelFlood()
	var report faultnet.FloodReport
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		report = flood.Datagrams(floodCtx, "udp", addr.String(), floodN, func(i int) []byte {
			q, err := (&dnsbl.Message{
				Header:    dnsbl.Header{ID: uint16(i)},
				Questions: []dnsbl.Question{{Name: fmt.Sprintf("flood%d.%s", i, chaosZone), Type: dnsbl.TypeA, Class: dnsbl.ClassIN}},
			}).Pack()
			if err != nil {
				return nil
			}
			return q
		})
	}()

	// Golden probes under fire: every accepted answer byte-identical,
	// every accepted round trip bounded.
	var worst time.Duration
	served := 0
	for round := 0; ; round++ {
		select {
		case <-floodDone:
			if report.Sent == 0 {
				t.Fatalf("flood sent nothing (errors: %d)", report.Errors)
			}
			if served == 0 {
				t.Fatal("no golden probe was served while the flood ran — the latency claim is vacuous")
			}
			if worst > 2*time.Second {
				t.Fatalf("worst accepted-probe latency %v under flood, want bounded well under the 5s timeout", worst)
			}
			// Shedding must have engaged, or the "overload" was not one.
			shed := int64(0)
			for _, r := range []overload.ShedReason{
				overload.ShedCapacity, overload.ShedRate,
				overload.ShedFairness, overload.ShedDeadline,
			} {
				shed += gm.Shed[overload.Bulk][r].Value()
			}
			if shed == 0 {
				t.Fatal("flood finished without a single bulk shed — offered load never exceeded capacity")
			}
			// And the goldens must still be byte-identical after the
			// storm (retrying through the queue's brief drain-down —
			// a shed right after the last flood packet is legitimate).
			for i, q := range probes {
				var reply []byte
				for attempt := 0; ; attempt++ {
					var err error
					reply, _, err = exchange(addr, q)
					if err == nil && !isShedReply(reply) {
						break
					}
					if attempt > 100 {
						t.Fatalf("post-flood probe %d never served (last err %v)", i, err)
					}
					wallSleep(5 * time.Millisecond)
				}
				if !bytes.Equal(reply, golden[i]) {
					t.Fatalf("post-flood probe %d reply diverged from golden:\n got %x\nwant %x", i, reply, golden[i])
				}
			}
			return
		default:
		}
		i := round % len(probes)
		reply, took, err := exchange(addr, probes[i])
		if err != nil || isShedReply(reply) {
			// A probe lost to UDP or shed under flood is not an accepted
			// request; only served probes make latency and byte-identity
			// claims.
			continue
		}
		served++
		if took > worst {
			worst = took
		}
		if !bytes.Equal(reply, golden[i]) {
			t.Fatalf("mid-flood probe %d reply diverged from golden:\n got %x\nwant %x", i, reply, golden[i])
		}
	}
}

// TestChaosOverloadDNSBLDrainMidFlood starts the drain while the
// flood is still arriving: Shutdown must complete within its deadline
// and the server's goroutines must all exit.
func TestChaosOverloadDNSBLDrainMidFlood(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, addr, _ := startFloodTarget(t)

	floodCtx, cancelFlood := context.WithCancel(context.Background())
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		f := faultnet.Flood{Seed: 31, Workers: 4}
		f.Datagrams(floodCtx, "udp", addr.String(), 1<<20, func(i int) []byte {
			q, _ := (&dnsbl.Message{
				Header:    dnsbl.Header{ID: uint16(i)},
				Questions: []dnsbl.Question{{Name: fmt.Sprintf("flood%d.%s", i, chaosZone), Type: dnsbl.TypeA, Class: dnsbl.ClassIN}},
			}).Pack()
			return q
		})
	}()

	// Let the flood actually land before pulling the plug.
	for srv.Queries() == 0 {
		wallSleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	//lint:allow wallclock -- chaos test drives a real edge server; wall time here is harness I/O, not engine time
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown mid-flood: %v", err)
	}
	cancelFlood()
	<-floodDone

	deadline := wallNow().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && wallNow().Before(deadline) {
		wallSleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked through a mid-flood drain: %d > baseline %d", n, baseline)
	}
}

// readCode reads one SMTP reply line and parses its 3-digit code.
func readCode(br *bufio.Reader) (int, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	if len(line) < 3 {
		return 0, fmt.Errorf("short reply %q", line)
	}
	code := 0
	for _, ch := range line[:3] {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("bad reply %q", line)
		}
		code = code*10 + int(ch-'0')
	}
	return code, nil
}

// TestChaosOverloadSMTPConnectionFlood hammers an admission-gated
// SMTP sink with seeded connection storms. Excess sessions are turned
// away with 421 at the banner — fast, protocol-native, retryable —
// while a well-behaved sender keeps delivering mail the whole time.
func TestChaosOverloadSMTPConnectionFlood(t *testing.T) {
	var received atomic.Int64
	srv := smtpd.NewServer("mx.chaos.example", func(smtpd.Envelope) { received.Add(1) })
	srv.Admission = overload.NewGate(overload.GateConfig{MaxConcurrent: 4})
	addr, err := srv.Listen("127.0.0.1:0") //lint:allow wallclock -- chaos test drives a real edge SMTP server; wall time here is harness I/O, not engine time
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var banners421, banners220 atomic.Int64
	flood := faultnet.Flood{Seed: 97, Workers: 8}
	floodCtx, cancelFlood := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelFlood()
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		flood.Connections(floodCtx, "tcp", addr.String(), 200, func(i int, c net.Conn) error {
			c.SetDeadline(wallNow().Add(5 * time.Second)) //nolint:errcheck
			br := bufio.NewReader(c)
			code, err := readCode(br)
			if err != nil {
				return err
			}
			switch code {
			case 421:
				banners421.Add(1)
				return nil
			case 220:
				banners220.Add(1)
				// Camp on the slot briefly so the gate stays contended,
				// then leave politely.
				wallSleep(2 * time.Millisecond)
				fmt.Fprintf(c, "QUIT\r\n")
				readCode(br) //nolint:errcheck
				return nil
			default:
				return fmt.Errorf("banner code %d", code)
			}
		})
	}()

	// The well-behaved sender: full sessions, retrying 421s the way a
	// real MTA requeues, must land mail throughout the storm.
	delivered := 0
	senderDeadline := wallNow().Add(25 * time.Second)
	for delivered < 5 {
		if wallNow().After(senderDeadline) {
			t.Fatalf("sender delivered only %d/5 messages before giving up", delivered)
		}
		if err := sendOneMessage(addr); err != nil {
			wallSleep(5 * time.Millisecond)
			continue
		}
		delivered++
	}
	cancelFlood()
	<-floodDone

	if banners421.Load() == 0 {
		t.Fatal("flood never saw a 421 — the gate never contended")
	}
	if banners220.Load() == 0 {
		t.Fatal("flood never got a banner — the gate admitted nothing")
	}
	if received.Load() < 5 {
		t.Fatalf("received %d messages, want the sender's 5 despite the flood", received.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after flood: %v", err)
	}
}

// sendOneMessage runs one complete SMTP transaction; any non-success
// reply is an error so the caller can retry.
func sendOneMessage(addr net.Addr) error {
	c, err := net.Dial("tcp", addr.String())
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(wallNow().Add(5 * time.Second)) //nolint:errcheck
	br := bufio.NewReader(c)
	expect := func(want int) error {
		code, err := readCode(br)
		if err != nil {
			return err
		}
		if code != want {
			return fmt.Errorf("got %d, want %d", code, want)
		}
		return nil
	}
	if err := expect(220); err != nil {
		return err
	}
	for _, step := range []struct {
		cmd  string
		want int
	}{
		{"HELO chaos.example", 250},
		{"MAIL FROM:<flood@chaos.example>", 250},
		{"RCPT TO:<victim@mx.chaos.example>", 250},
		{"DATA", 354},
	} {
		fmt.Fprintf(c, "%s\r\n", step.cmd)
		if err := expect(step.want); err != nil {
			return fmt.Errorf("%s: %w", step.cmd, err)
		}
	}
	fmt.Fprintf(c, "Subject: chaos\r\n\r\nhello\r\n.\r\n")
	if err := expect(250); err != nil {
		return fmt.Errorf("end-of-data: %w", err)
	}
	fmt.Fprintf(c, "QUIT\r\n")
	return nil
}

// TestChaosOverloadFeedsyncSlowReaderFanout fans several stalling
// subscribers out against one budgeted feedsync server: the healthy
// subscriber must stream at full speed regardless, and a drain begun
// while the slow readers are mid-crawl must still flush every record.
func TestChaosOverloadFeedsyncSlowReaderFanout(t *testing.T) {
	srv := feedsync.NewServer()
	if err := srv.Register("uribl", feeds.KindBlacklist, false, false); err != nil {
		t.Fatal(err)
	}
	srv.MaxBatch = 64
	//lint:allow wallclock -- chaos test drives a real feedsync server; wall time here is harness I/O, not engine time
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 300
	for i := 0; i < n; i++ {
		rec := feeds.RawRecord{
			Time:   simclock.PaperStart.Add(time.Duration(i) * time.Hour),
			Domain: chaosDomain(i % 64),
			URL:    fmt.Sprintf("http://%s/p/%d", chaosDomain(i%64), i),
		}
		if err := srv.Publish("uribl", rec); err != nil {
			t.Fatal(err)
		}
	}

	// Four slow readers, each with its own seeded stall profile.
	var wg sync.WaitGroup
	slowOffsets := make([]int64, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := feedsync.NewClient(addr.String())
			cl.Dial = faultnet.New(faultnet.Faults{
				Seed:          uint64(100 + w),
				ReadStallProb: 0.5,
				ReadStall:     2 * time.Millisecond,
			}).Dial
			dst := feeds.New("uribl", feeds.KindBlacklist, false, false)
			//lint:allow wallclock -- chaos test syncs over a faulty real socket; wall time is the harness's, not the engine's
			off, err := cl.Sync("uribl", 0, dst)
			if err != nil {
				t.Errorf("slow subscriber %d: %v", w, err)
				return
			}
			slowOffsets[w] = off
		}(w)
	}

	// The healthy subscriber must not care about its stalling peers.
	fastStart := wallNow()
	dst := feeds.New("uribl", feeds.KindBlacklist, false, false)
	//lint:allow wallclock -- chaos test syncs over a real socket; wall time is the harness's, not the engine's
	off, err := feedsync.NewClient(addr.String()).Sync("uribl", 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if off != n {
		t.Fatalf("healthy subscriber offset = %d, want %d", off, n)
	}
	if took := wallNow().Sub(fastStart); took > 10*time.Second {
		t.Fatalf("healthy subscriber took %v behind %d stalling peers", took, 4)
	}

	// Drain while the slow readers are still mid-crawl: the drain
	// contract flushes their streams to completion anyway.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with stalling subscribers in flight: %v", err)
	}
	wg.Wait()
	for w, off := range slowOffsets {
		if off != n {
			t.Fatalf("slow subscriber %d offset = %d, want %d", w, off, n)
		}
	}
}
