package overload

import (
	"context"
	"time"
)

// Clip returns a child of ctx whose deadline is the sooner of ctx's
// own deadline and now.Add(budget): the deadline-propagation helper.
// A handler admitted with some latency budget left hands every
// downstream call a context that cannot outlive that budget, so work
// for a requester that has already given up is cancelled instead of
// completed into the void. A non-positive budget yields an
// already-expired context. Callers must invoke the CancelFunc.
func Clip(ctx context.Context, now time.Time, budget time.Duration) (context.Context, context.CancelFunc) {
	d := now.Add(budget)
	if cur, ok := ctx.Deadline(); ok && cur.Before(d) {
		d = cur
	}
	return context.WithDeadline(ctx, d)
}

// Remaining returns the budget left before ctx's deadline as measured
// at now, clamped to [0, fallback]. When ctx carries no deadline the
// fallback is returned whole — the caller's default timeout.
func Remaining(ctx context.Context, now time.Time, fallback time.Duration) time.Duration {
	d, ok := ctx.Deadline()
	if !ok {
		return fallback
	}
	left := d.Sub(now)
	if left < 0 {
		return 0
	}
	if left > fallback {
		return fallback
	}
	return left
}
