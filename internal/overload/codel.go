package overload

import (
	"math"
	"time"
)

// CoDelConfig tunes the queue-deadline controller. The zero value uses
// the defaults noted on each field.
type CoDelConfig struct {
	// Target is the acceptable standing queue delay: while the minimum
	// sojourn over an Interval stays below it, nothing is shed
	// (default 5ms).
	Target time.Duration
	// Interval is the measurement window; sojourn must stay above
	// Target for a full Interval before shedding starts (default
	// 100ms).
	Interval time.Duration
	// MaxSojourn is the hard queue deadline: an item that waited this
	// long is shed unconditionally — its requester has almost
	// certainly timed out, so answering it is wasted work
	// (default 10×Target, 0 to apply the default; negative disables).
	MaxSojourn time.Duration
}

func (c CoDelConfig) target() time.Duration {
	if c.Target <= 0 {
		return 5 * time.Millisecond
	}
	return c.Target
}

func (c CoDelConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return c.Interval
}

func (c CoDelConfig) maxSojourn() time.Duration {
	if c.MaxSojourn < 0 {
		return 0
	}
	if c.MaxSojourn == 0 {
		return 10 * c.target()
	}
	return c.MaxSojourn
}

// CoDel implements the Controlled-Delay AQM decision function over
// queue sojourn times: shedding starts only after the *minimum*
// sojourn has exceeded Target for a full Interval (so bursts ride
// through untouched), and then paces drops at Interval/√n — the
// control law that nudges a standing queue back to Target without
// collapsing throughput. All state advances from caller-supplied
// timestamps, so the same sequence of (now, sojourn) pairs always
// sheds the same items. Not safe for concurrent use; the owning Queue
// serializes calls under its lock.
type CoDel struct {
	cfg CoDelConfig

	// firstAbove is when sojourn first stayed above target; zero when
	// below.
	firstAbove time.Time
	dropping   bool
	dropNext   time.Time
	dropCount  int
}

// NewCoDel returns a controller with the given tuning.
func NewCoDel(cfg CoDelConfig) *CoDel { return &CoDel{cfg: cfg} }

// controlLaw paces successive drops: the n-th drop of a dropping
// episode happens Interval/√n after the episode began.
func (c *CoDel) controlLaw(t time.Time) time.Time {
	return t.Add(time.Duration(float64(c.cfg.interval()) / math.Sqrt(float64(c.dropCount))))
}

// OnDequeue decides whether the item dequeued at now after waiting
// sojourn should be shed. last reports whether the item is the only
// one in the queue — CoDel never sheds the last item (shedding it
// would leave capacity idle while still failing the request).
func (c *CoDel) OnDequeue(now time.Time, sojourn time.Duration, last bool) bool {
	if max := c.cfg.maxSojourn(); max > 0 && sojourn > max {
		// Hard queue deadline: stale work is dead work, even when it is
		// the last item.
		return true
	}
	if sojourn < c.cfg.target() || last {
		// Below target (or nothing behind it): leave the dropping
		// episode.
		c.firstAbove = time.Time{}
		if c.dropping {
			c.dropping = false
		}
		return false
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.cfg.interval())
		return false
	}
	if c.dropping {
		if now.Before(c.dropNext) {
			return false
		}
		c.dropCount++
		c.dropNext = c.controlLaw(c.dropNext)
		return true
	}
	if !now.Before(c.firstAbove) {
		// Sojourn has been above target a full interval: open a
		// dropping episode. Resume near the previous drop rate if the
		// last episode ended recently (the standard CoDel refinement),
		// else start fresh.
		c.dropping = true
		if c.dropCount > 2 {
			c.dropCount -= 2
		} else {
			c.dropCount = 1
		}
		c.dropNext = c.controlLaw(now)
		return true
	}
	return false
}
