package overload

import (
	"sync"
	"time"
)

// TokenBucket is a deterministic token-bucket rate limiter: capacity
// Burst tokens, refilled at Rate tokens per second of the injected
// clock. Because refill is computed from timestamps rather than
// timers, a simclock-driven test replays the exact admit/shed
// sequence. Safe for concurrent use.
type TokenBucket struct {
	rate  float64
	burst float64
	clock Clock

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/sec up
// to burst. rate <= 0 makes the bucket unlimited (Allow always true).
func NewTokenBucket(rate, burst float64, clock Clock) *TokenBucket {
	if burst <= 0 {
		burst = rate
	}
	return &TokenBucket{rate: rate, burst: burst, clock: clockOr(clock), tokens: burst}
}

// refillLocked advances the token count to now. Callers hold b.mu.
func (b *TokenBucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	// A clock that moved backwards (a re-anchored simclock) leaves the
	// balance untouched rather than refunding negative time.
	if now.After(b.last) {
		b.last = now
	}
}

// Allow takes n tokens if available, reporting whether it did.
func (b *TokenBucket) Allow(n float64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Delay returns how long the caller must wait before n tokens will be
// available (0 when they already are). It does not take the tokens;
// pacers sleep the delay and then Allow. Used by feedsync's
// per-subscriber send budgets.
func (b *TokenBucket) Delay(n float64) time.Duration {
	if b == nil || b.rate <= 0 {
		return 0
	}
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= n {
		return 0
	}
	missing := n - b.tokens
	return time.Duration(missing / b.rate * float64(time.Second))
}

// Tokens returns the current balance (after refill), for tests and
// gauges.
func (b *TokenBucket) Tokens() float64 {
	if b == nil {
		return 0
	}
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}

// Fairness shares capacity across clients: each client key hashes
// (seeded FNV-1a) into one of k buckets, each an independent
// TokenBucket, so a single flooding client — or hash bucket of
// clients — exhausts only its own share while everyone else keeps
// being served. Safe for concurrent use.
type Fairness struct {
	seed    uint64
	buckets []*TokenBucket
}

// NewFairness builds k buckets each refilling at rate tokens/sec up to
// burst.
func NewFairness(k int, rate, burst float64, seed uint64, clock Clock) *Fairness {
	if k < 1 {
		k = 1
	}
	clock = clockOr(clock)
	f := &Fairness{seed: seed, buckets: make([]*TokenBucket, k)}
	for i := range f.buckets {
		f.buckets[i] = NewTokenBucket(rate, burst, clock)
	}
	return f
}

// bucketIndex hashes a client key to its bucket, mixing in the seed so
// the partition is deterministic per run but differs across seeds.
func (f *Fairness) bucketIndex(client string) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ f.seed
	for i := 0; i < len(client); i++ {
		h ^= uint64(client[i])
		h *= prime
	}
	return int(h % uint64(len(f.buckets)))
}

// Allow takes one token from the client's bucket, reporting whether
// the client is within its share.
func (f *Fairness) Allow(client string) bool {
	if f == nil {
		return true
	}
	return f.buckets[f.bucketIndex(client)].Allow(1)
}
