package overload

import "tasterschoice/internal/obs"

// ShedReason says why work was refused, as a metric label and as the
// argument to queue shed callbacks so protocols can pick their reply
// (a rate shed is the client's fault — REFUSED/tempfail — while a
// capacity or deadline shed is the server's — SERVFAIL/try-later).
type ShedReason int

const (
	// ShedCapacity: the concurrency limit or queue bound was hit.
	ShedCapacity ShedReason = iota
	// ShedRate: a priority-class token bucket ran dry.
	ShedRate
	// ShedFairness: the client's fairness bucket ran dry.
	ShedFairness
	// ShedDeadline: the item waited past the CoDel target or the hard
	// MaxSojourn queue deadline.
	ShedDeadline
	numShedReasons
)

// String implements fmt.Stringer (used as a metric label).
func (r ShedReason) String() string {
	switch r {
	case ShedCapacity:
		return "capacity"
	case ShedRate:
		return "rate"
	case ShedFairness:
		return "fairness"
	case ShedDeadline:
		return "deadline"
	default:
		return "unknown"
	}
}

// GateMetrics observes an admission Gate: accept/shed counters per
// priority class (sheds further split by reason) and an in-flight
// gauge. The zero value is inert — obs instruments are nil-safe — so
// an unwired gate costs nothing.
type GateMetrics struct {
	// Admitted counts admissions per priority class.
	Admitted [NumPriorities]*obs.Counter
	// Shed counts refusals per priority class and reason.
	Shed [NumPriorities][numShedReasons]*obs.Counter
	// InFlight gauges admissions currently held.
	InFlight *obs.Gauge
}

// NewGateMetrics wires a GateMetrics to r, prefixing every series with
// name (e.g. "dnsbl_server"). Safe with a nil registry.
func NewGateMetrics(r *obs.Registry, name string) GateMetrics {
	var m GateMetrics
	for p := Priority(0); p < NumPriorities; p++ {
		m.Admitted[p] = r.Counter(name+"_admitted_total", "priority", p.String())
		for reason := ShedReason(0); reason < numShedReasons; reason++ {
			m.Shed[p][reason] = r.Counter(name+"_shed_total",
				"priority", p.String(), "reason", reason.String())
		}
	}
	m.InFlight = r.Gauge(name + "_inflight")
	r.Describe(name+"_admitted_total", "Requests admitted, by priority class.")
	r.Describe(name+"_shed_total", "Requests shed, by priority class and reason.")
	r.Describe(name+"_inflight", "Admissions currently in flight.")
	return m
}

// admitted records one admission at priority p.
func (m GateMetrics) admitted(p Priority) {
	if p < 0 || p >= NumPriorities {
		p = Bulk
	}
	m.Admitted[p].Inc()
}

// shed records one refusal at priority p for the given reason.
func (m GateMetrics) shed(p Priority, reason ShedReason) {
	if p < 0 || p >= NumPriorities {
		p = Bulk
	}
	if reason < 0 || reason >= numShedReasons {
		reason = ShedCapacity
	}
	m.Shed[p][reason].Inc()
}

// QueueMetrics observes a bounded Queue: depth gauge, admitted
// counter, shed counters by reason, and the admission-latency
// (sojourn) histogram. The zero value is inert.
type QueueMetrics struct {
	// Depth gauges the current queue length.
	Depth *obs.Gauge
	// Admitted counts items delivered to a consumer.
	Admitted *obs.Counter
	// ShedByReason counts items shed, by reason (capacity at push,
	// deadline at pop).
	ShedByReason [numShedReasons]*obs.Counter
	// SojournSeconds observes the queue wait of every delivered item —
	// the admission-latency histogram overload tuning reads.
	SojournSeconds *obs.Histogram
}

// NewQueueMetrics wires a QueueMetrics to r, prefixing every series
// with name. Safe with a nil registry.
func NewQueueMetrics(r *obs.Registry, name string) QueueMetrics {
	var m QueueMetrics
	m.Depth = r.Gauge(name + "_queue_depth")
	m.Admitted = r.Counter(name + "_queue_admitted_total")
	for reason := ShedReason(0); reason < numShedReasons; reason++ {
		m.ShedByReason[reason] = r.Counter(name+"_queue_shed_total", "reason", reason.String())
	}
	m.SojournSeconds = r.Histogram(name+"_queue_sojourn_seconds", obs.DefSecondsBuckets)
	r.Describe(name+"_queue_depth", "Items waiting in the work queue.")
	r.Describe(name+"_queue_admitted_total", "Items delivered to a worker.")
	r.Describe(name+"_queue_shed_total", "Items shed from the work queue, by reason.")
	r.Describe(name+"_queue_sojourn_seconds", "Queue wait of delivered items.")
	return m
}

// shed records one queue shed for the given reason.
func (m QueueMetrics) shed(reason ShedReason) {
	if reason < 0 || reason >= numShedReasons {
		reason = ShedCapacity
	}
	m.ShedByReason[reason].Inc()
}
