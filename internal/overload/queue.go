package overload

import (
	"context"
	"sync"
	"time"
)

// queued is one item with its admission timestamp.
type queued[T any] struct {
	v   T
	enq time.Time
}

// Queue is a bounded FIFO work queue with CoDel-style queue-deadline
// shedding. Producers Push without blocking — a full queue is a shed,
// not a wait — and consumers PopContext; at dequeue the CoDel
// controller may shed aged items (invoking the shed callback so the
// protocol can send its cheap refusal) before delivering a fresh one.
// Close stops intake; consumers drain the remainder and then see
// ok=false, which is how servers drain mid-flood without losing
// accepted work. Safe for concurrent use.
type Queue[T any] struct {
	max     int
	clock   Clock
	onShed  func(T, ShedReason)
	metrics QueueMetrics

	mu      sync.Mutex
	codel   *CoDel
	items   []queued[T]
	closed  bool
	changed chan struct{}
}

// NewQueue builds a queue holding at most max items (max <= 0 means
// unbounded intake; CoDel still sheds standing delay). onShed, when
// non-nil, receives every shed item together with the reason — queue
// sheds happen on the consumer's goroutine, push-time sheds on the
// producer's.
func NewQueue[T any](max int, cfg CoDelConfig, clock Clock, onShed func(T, ShedReason)) *Queue[T] {
	return &Queue[T]{
		max:     max,
		clock:   clockOr(clock),
		codel:   NewCoDel(cfg),
		onShed:  onShed,
		changed: make(chan struct{}),
	}
}

// SetMetrics attaches instrumentation. Call before serving.
func (q *Queue[T]) SetMetrics(m QueueMetrics) { q.metrics = m }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Push offers an item. It never blocks: false means the item was shed
// (queue full or closed) and the onShed callback — when configured —
// has already run on this goroutine.
func (q *Queue[T]) Push(v T) bool {
	now := q.clock()
	q.mu.Lock()
	if q.closed || (q.max > 0 && len(q.items) >= q.max) {
		closed := q.closed
		q.mu.Unlock()
		if !closed {
			q.metrics.shed(ShedCapacity)
			if q.onShed != nil {
				q.onShed(v, ShedCapacity)
			}
		}
		return false
	}
	q.items = append(q.items, queued[T]{v: v, enq: now})
	q.metrics.Depth.Set(int64(len(q.items)))
	q.broadcastLocked()
	q.mu.Unlock()
	return true
}

// broadcastLocked wakes every parked consumer. Callers hold q.mu.
func (q *Queue[T]) broadcastLocked() {
	close(q.changed)
	q.changed = make(chan struct{})
}

// PopContext returns the next admitted item, blocking until one is
// available, the queue is closed *and* drained, or ctx is done (the
// latter two return ok=false). Items the CoDel controller sheds on
// the way are handed to the shed callback and skipped.
func (q *Queue[T]) PopContext(ctx context.Context) (v T, ok bool) {
	for {
		q.mu.Lock()
		for len(q.items) > 0 {
			it := q.items[0]
			q.items = q.items[1:]
			last := len(q.items) == 0
			if last {
				// Release the backing array so a drained queue does not
				// pin a flood's worth of items.
				q.items = nil
			}
			q.metrics.Depth.Set(int64(len(q.items)))
			now := q.clock()
			sojourn := now.Sub(it.enq)
			if q.codel.OnDequeue(now, sojourn, last) {
				q.mu.Unlock()
				q.metrics.shed(ShedDeadline)
				if q.onShed != nil {
					q.onShed(it.v, ShedDeadline)
				}
				q.mu.Lock()
				continue
			}
			q.mu.Unlock()
			q.metrics.Admitted.Inc()
			q.metrics.SojournSeconds.Observe(sojourn.Seconds())
			return it.v, true
		}
		if q.closed {
			q.mu.Unlock()
			return v, false
		}
		wait := q.changed
		q.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return v, false
		}
	}
}

// Close stops intake (further Pushes shed) and wakes parked
// consumers; items already queued remain poppable so consumers drain
// cleanly. Idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.broadcastLocked()
	}
	q.mu.Unlock()
}
