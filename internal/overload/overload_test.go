package overload

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"tasterschoice/internal/obs"
)

// fakeClock is a hand-advanced clock; tests drive it so every
// admission decision replays exactly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCoDelBurstRidesThrough(t *testing.T) {
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, MaxSojourn: -1}
	c := NewCoDel(cfg)
	now := time.Unix(0, 0)
	// Sojourn above target, but for less than a full interval: a burst,
	// not a standing queue. Nothing sheds.
	for i := 0; i < 9; i++ {
		now = now.Add(10 * time.Millisecond)
		if c.OnDequeue(now, 20*time.Millisecond, false) {
			t.Fatalf("shed during burst at step %d", i)
		}
	}
}

func TestCoDelShedsStandingQueue(t *testing.T) {
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, MaxSojourn: -1}
	c := NewCoDel(cfg)
	now := time.Unix(0, 0)
	shed := 0
	// Sojourn pinned above target for well over an interval: a dropping
	// episode must open and pace drops at Interval/sqrt(n).
	for i := 0; i < 200; i++ {
		now = now.Add(5 * time.Millisecond)
		if c.OnDequeue(now, 50*time.Millisecond, false) {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("standing queue above target never shed")
	}
	// 200 steps * 5ms = 1s of standing delay. Drop pacing sums
	// Interval/sqrt(n); after ~900ms of episode roughly sqrt-law drops.
	if shed < 5 || shed > 150 {
		t.Fatalf("shed count %d outside plausible control-law range", shed)
	}
}

func TestCoDelDeterministicReplay(t *testing.T) {
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	run := func() []bool {
		c := NewCoDel(cfg)
		now := time.Unix(0, 0)
		var out []bool
		for i := 0; i < 500; i++ {
			now = now.Add(3 * time.Millisecond)
			// Deterministic sawtooth of sojourns around target.
			soj := time.Duration((i%17)+1) * 2 * time.Millisecond
			out = append(out, c.OnDequeue(now, soj, i%23 == 0))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCoDelNeverShedsLastItem(t *testing.T) {
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, MaxSojourn: -1}
	c := NewCoDel(cfg)
	now := time.Unix(0, 0)
	// Drive it deep into a dropping episode…
	for i := 0; i < 100; i++ {
		now = now.Add(5 * time.Millisecond)
		c.OnDequeue(now, 50*time.Millisecond, false)
	}
	// …then the last item must still be delivered.
	now = now.Add(5 * time.Millisecond)
	if c.OnDequeue(now, 50*time.Millisecond, true) {
		t.Fatal("shed the last item without a hard deadline")
	}
}

func TestCoDelMaxSojournShedsEvenLast(t *testing.T) {
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, MaxSojourn: 50 * time.Millisecond}
	c := NewCoDel(cfg)
	now := time.Unix(0, 0)
	if !c.OnDequeue(now, 51*time.Millisecond, true) {
		t.Fatal("item past the hard queue deadline was not shed")
	}
	if c.OnDequeue(now, 49*time.Millisecond, true) {
		t.Fatal("last item under the deadline was shed")
	}
}

func TestCoDelDefaultMaxSojourn(t *testing.T) {
	cfg := CoDelConfig{Target: 5 * time.Millisecond}
	if got, want := cfg.maxSojourn(), 50*time.Millisecond; got != want {
		t.Fatalf("default MaxSojourn = %v, want 10×Target = %v", got, want)
	}
	if got := (CoDelConfig{MaxSojourn: -1}).maxSojourn(); got != 0 {
		t.Fatalf("negative MaxSojourn should disable, got %v", got)
	}
}

func TestCoDelControlLawPacing(t *testing.T) {
	c := NewCoDel(CoDelConfig{Interval: 100 * time.Millisecond})
	c.dropCount = 4
	base := time.Unix(0, 0)
	got := c.controlLaw(base).Sub(base)
	want := time.Duration(float64(100*time.Millisecond) / math.Sqrt(4))
	if got != want {
		t.Fatalf("controlLaw(n=4) = %v, want %v", got, want)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 5, clk.Now) // 10 tok/s, burst 5
	for i := 0; i < 5; i++ {
		if !b.Allow(1) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.Allow(1) {
		t.Fatal("allowed past burst with no time elapsed")
	}
	clk.Advance(100 * time.Millisecond) // +1 token
	if !b.Allow(1) {
		t.Fatal("refused after refill")
	}
	if b.Allow(1) {
		t.Fatal("allowed more than the refill")
	}
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 5 {
		t.Fatalf("tokens after long idle = %v, want burst cap 5", got)
	}
}

func TestTokenBucketDelay(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 1, clk.Now)
	if d := b.Delay(1); d != 0 {
		t.Fatalf("full bucket Delay = %v, want 0", d)
	}
	b.Allow(1)
	if d := b.Delay(1); d != 100*time.Millisecond {
		t.Fatalf("Delay for 1 token at 10/s = %v, want 100ms", d)
	}
	var nilBucket *TokenBucket
	if d := nilBucket.Delay(1); d != 0 {
		t.Fatalf("nil bucket Delay = %v, want 0", d)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(0, 0, newFakeClock().Now)
	for i := 0; i < 1000; i++ {
		if !b.Allow(1) {
			t.Fatal("rate<=0 bucket must be unlimited")
		}
	}
	var nilBucket *TokenBucket
	if !nilBucket.Allow(1) {
		t.Fatal("nil bucket must allow")
	}
}

func TestTokenBucketClockBackwards(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 10, clk.Now)
	b.Allow(5)
	before := b.Tokens()
	clk.Advance(-time.Hour)
	if got := b.Tokens(); got != before {
		t.Fatalf("backwards clock changed balance: %v -> %v", before, got)
	}
}

func TestFairnessIsolation(t *testing.T) {
	clk := newFakeClock()
	f := NewFairness(64, 10, 10, 42, clk.Now)
	// Find two clients that land in different buckets.
	a := "client-a"
	b := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("client-%d", i)
		if f.bucketIndex(cand) != f.bucketIndex(a) {
			b = cand
			break
		}
	}
	if b == "" {
		t.Fatal("could not find clients in distinct buckets")
	}
	// Flood a's bucket dry.
	for f.Allow(a) {
	}
	if f.Allow(a) {
		t.Fatal("flooding client still admitted")
	}
	if !f.Allow(b) {
		t.Fatal("innocent client starved by another bucket's flood")
	}
}

func TestFairnessSeedChangesPartition(t *testing.T) {
	clk := newFakeClock()
	f1 := NewFairness(64, 1, 1, 1, clk.Now)
	f2 := NewFairness(64, 1, 1, 2, clk.Now)
	same := 0
	for i := 0; i < 256; i++ {
		c := fmt.Sprintf("c%d", i)
		if f1.bucketIndex(c) == f2.bucketIndex(c) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seed had no effect on bucket assignment")
	}
}

func TestPriorityShareHeadroom(t *testing.T) {
	cases := []struct {
		p    Priority
		max  int
		want int
	}{
		{Bulk, 20, 15},
		{Normal, 20, 18},
		{Critical, 20, 20},
		{Bulk, 1, 1}, // floor: a tiny gate still serves
		{Priority(99), 20, 15},
	}
	for _, c := range cases {
		if got := c.p.Share(c.max); got != c.want {
			t.Errorf("%v.Share(%d) = %d, want %d", c.p, c.max, got, c.want)
		}
	}
}

func TestGatePriorityHeadroom(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(GateConfig{MaxConcurrent: 20, Clock: clk.Now})
	var releases []func()
	admitAll := func(p Priority) int {
		n := 0
		for {
			rel, ok := g.Admit(p, "c")
			if !ok {
				return n
			}
			releases = append(releases, rel)
			n++
		}
	}
	if got := admitAll(Bulk); got != 15 {
		t.Fatalf("bulk admissions = %d, want 15 (3/4 of 20)", got)
	}
	if got := admitAll(Normal); got != 3 {
		t.Fatalf("normal admissions on top = %d, want 3 (to 18)", got)
	}
	if got := admitAll(Critical); got != 2 {
		t.Fatalf("critical admissions on top = %d, want 2 (to 20)", got)
	}
	if got := g.InFlight(); got != 20 {
		t.Fatalf("InFlight = %d, want 20", got)
	}
	if p := g.Pressure(); p != 1 {
		t.Fatalf("Pressure = %v, want 1", p)
	}
	for _, rel := range releases {
		rel()
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 2, Clock: newFakeClock().Now})
	rel, ok := g.Admit(Critical, "c")
	if !ok {
		t.Fatal("empty gate refused")
	}
	rel()
	rel() // double release must not underflow
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after double release = %d, want 0", got)
	}
}

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	rel, ok := g.Admit(Bulk, "c")
	if !ok {
		t.Fatal("nil gate refused")
	}
	rel()
	if !g.Allow(Bulk, "c") {
		t.Fatal("nil gate Allow refused")
	}
	if g.InFlight() != 0 || g.Pressure() != 0 {
		t.Fatal("nil gate reports load")
	}
}

func TestGateRateShed(t *testing.T) {
	clk := newFakeClock()
	var cfg GateConfig
	cfg.Clock = clk.Now
	cfg.Rate[Bulk] = 10
	cfg.Burst[Bulk] = 2
	g := NewGate(cfg)
	if !g.Allow(Bulk, "c") || !g.Allow(Bulk, "c") {
		t.Fatal("burst refused")
	}
	if g.Allow(Bulk, "c") {
		t.Fatal("allowed past bulk rate")
	}
	// Other classes are unlimited.
	if !g.Allow(Critical, "c") {
		t.Fatal("critical refused while unlimited")
	}
	clk.Advance(time.Second)
	if !g.Allow(Bulk, "c") {
		t.Fatal("refused after refill")
	}
}

func TestGateMetricsObserve(t *testing.T) {
	clk := newFakeClock()
	r := obs.NewRegistry()
	var cfg GateConfig
	cfg.MaxConcurrent = 1
	cfg.Clock = clk.Now
	cfg.Metrics = NewGateMetrics(r, "test_gate")
	g := NewGate(cfg)
	rel, ok := g.Admit(Critical, "c")
	if !ok {
		t.Fatal("refused")
	}
	if _, ok := g.Admit(Critical, "c"); ok {
		t.Fatal("admitted past MaxConcurrent")
	}
	rel()
	if got := cfg.Metrics.Admitted[Critical].Value(); got != 1 {
		t.Fatalf("admitted counter = %d, want 1", got)
	}
	if got := cfg.Metrics.Shed[Critical][ShedCapacity].Value(); got != 1 {
		t.Fatalf("capacity shed counter = %d, want 1", got)
	}
	if got := cfg.Metrics.InFlight.Value(); got != 0 {
		t.Fatalf("inflight gauge = %d, want 0", got)
	}
}

func TestQueueFIFOAndDrain(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue[int](10, CoDelConfig{}, clk.Now, nil)
	for i := 0; i < 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d refused", i)
		}
	}
	q.Close()
	if q.Push(99) {
		t.Fatal("push admitted after Close")
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		v, ok := q.PopContext(ctx)
		if !ok || v != i {
			t.Fatalf("pop %d = (%v, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := q.PopContext(ctx); ok {
		t.Fatal("pop on drained closed queue returned ok")
	}
}

func TestQueueBoundedShed(t *testing.T) {
	clk := newFakeClock()
	var sheds []ShedReason
	q := NewQueue[int](2, CoDelConfig{}, clk.Now, func(_ int, r ShedReason) {
		sheds = append(sheds, r)
	})
	q.Push(1)
	q.Push(2)
	if q.Push(3) {
		t.Fatal("push past bound admitted")
	}
	if len(sheds) != 1 || sheds[0] != ShedCapacity {
		t.Fatalf("sheds = %v, want [capacity]", sheds)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue[int](10, CoDelConfig{}, clk.Now, nil)
	got := make(chan int, 1)
	go func() {
		v, ok := q.PopContext(context.Background())
		if ok {
			got <- v
		}
	}()
	q.Push(7)
	if v := <-got; v != 7 {
		t.Fatalf("popped %d, want 7", v)
	}
}

func TestQueuePopContextCancel(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue[int](10, CoDelConfig{}, clk.Now, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := q.PopContext(ctx)
		done <- ok
	}()
	cancel()
	if ok := <-done; ok {
		t.Fatal("cancelled pop returned ok")
	}
}

func TestQueueDeadlineShed(t *testing.T) {
	clk := newFakeClock()
	var sheds []ShedReason
	q := NewQueue[int](10, CoDelConfig{Target: 5 * time.Millisecond, MaxSojourn: 50 * time.Millisecond},
		clk.Now, func(_ int, r ShedReason) { sheds = append(sheds, r) })
	q.Push(1)
	q.Push(2)
	// Both items age past the hard queue deadline. Both are shed; the
	// closed+drained queue then reports ok=false rather than blocking.
	clk.Advance(time.Second)
	q.Close()
	if _, ok := q.PopContext(context.Background()); ok {
		t.Fatal("stale item delivered past hard deadline")
	}
	if len(sheds) != 2 {
		t.Fatalf("sheds = %v, want two deadline sheds", sheds)
	}
	for _, r := range sheds {
		if r != ShedDeadline {
			t.Fatalf("shed reason = %v, want deadline", r)
		}
	}
}

func TestQueueMetricsObserve(t *testing.T) {
	clk := newFakeClock()
	r := obs.NewRegistry()
	q := NewQueue[int](1, CoDelConfig{}, clk.Now, nil)
	m := NewQueueMetrics(r, "test")
	q.SetMetrics(m)
	q.Push(1)
	q.Push(2) // shed: capacity
	v, ok := q.PopContext(context.Background())
	if !ok || v != 1 {
		t.Fatalf("pop = (%v, %v)", v, ok)
	}
	if got := m.Admitted.Value(); got != 1 {
		t.Fatalf("admitted = %d, want 1", got)
	}
	if got := m.ShedByReason[ShedCapacity].Value(); got != 1 {
		t.Fatalf("capacity sheds = %d, want 1", got)
	}
	if got := m.SojournSeconds.Count(); got != 1 {
		t.Fatalf("sojourn observations = %d, want 1", got)
	}
	if got := m.Depth.Value(); got != 0 {
		t.Fatalf("depth gauge = %d, want 0", got)
	}
}

func TestClip(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	parent, cancel := context.WithDeadline(context.Background(), now.Add(time.Second))
	defer cancel()
	ctx, cancel2 := Clip(parent, now, 100*time.Millisecond)
	defer cancel2()
	d, ok := ctx.Deadline()
	if !ok || !d.Equal(now.Add(100*time.Millisecond)) {
		t.Fatalf("clipped deadline = %v, want now+100ms", d)
	}
	// Parent sooner than budget: parent wins.
	ctx2, cancel3 := Clip(parent, now, time.Hour)
	defer cancel3()
	d2, _ := ctx2.Deadline()
	if !d2.Equal(now.Add(time.Second)) {
		t.Fatalf("clip kept later deadline %v over parent's", d2)
	}
	// Non-positive budget: already expired.
	ctx3, cancel4 := Clip(context.Background(), now, 0)
	defer cancel4()
	d3, ok := ctx3.Deadline()
	if !ok || d3.After(now) {
		t.Fatalf("zero budget deadline = %v, want <= now", d3)
	}
}

func TestRemaining(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	if got := Remaining(context.Background(), now, time.Second); got != time.Second {
		t.Fatalf("no-deadline Remaining = %v, want fallback", got)
	}
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(300*time.Millisecond))
	defer cancel()
	if got := Remaining(ctx, now, time.Second); got != 300*time.Millisecond {
		t.Fatalf("Remaining = %v, want 300ms", got)
	}
	if got := Remaining(ctx, now.Add(time.Second), time.Second); got != 0 {
		t.Fatalf("expired Remaining = %v, want 0", got)
	}
	if got := Remaining(ctx, now, 100*time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("Remaining clamp = %v, want fallback 100ms", got)
	}
}

func TestGateConcurrentAdmitRace(t *testing.T) {
	// Hammer Admit/release from many goroutines under the wall-free
	// fake clock; -race plus the InFlight invariant catches accounting
	// bugs.
	clk := newFakeClock()
	g := NewGate(GateConfig{MaxConcurrent: 8, Clock: clk.Now})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", id)
			for j := 0; j < 200; j++ {
				if rel, ok := g.Admit(Normal, client); ok {
					if g.InFlight() > 8 {
						t.Error("inflight exceeded MaxConcurrent")
					}
					rel()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue[int](128, CoDelConfig{MaxSojourn: -1}, clk.Now, nil)
	const producers, perProducer, consumers = 8, 100, 4
	var wg sync.WaitGroup
	var pushed, popped int64
	var mu sync.Mutex
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if q.Push(i) {
					mu.Lock()
					pushed++
					mu.Unlock()
				}
			}
		}()
	}
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if _, ok := q.PopContext(context.Background()); !ok {
					return
				}
				mu.Lock()
				popped++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	close(done)
	if pushed != popped {
		t.Fatalf("pushed %d != popped %d (no sheds configured to lose items)", pushed, popped)
	}
}
