package tasterschoice

// The benchmark harness regenerates every table and figure in the
// paper's evaluation (Tables 1-3, Figures 1-12) against the default
// scenario, and measures the ablations called out in DESIGN.md. Run
// with -v to also print each reproduced table/figure once.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/benchref"
	"tasterschoice/internal/core"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
)

var (
	benchOnce sync.Once
	benchDS   *analysis.Dataset
)

// benchDataset builds the default-scale dataset once per test binary.
func benchDataset(b *testing.B) *analysis.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = simulate.Default(2010).MustRun()
	})
	return benchDS
}

var printedSections sync.Map

// emit prints a reproduced section once per binary when -v is set.
func emit(b *testing.B, title, body string) {
	b.Helper()
	if !testing.Verbose() {
		return
	}
	if _, dup := printedSections.LoadOrStore(title, true); dup {
		return
	}
	fmt.Fprintf(os.Stdout, "== %s ==\n%s\n", title, body)
}

func BenchmarkTable1FeedSummary(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.FeedSummary
	for i := 0; i < b.N; i++ {
		rows = analysis.Table1(ds)
	}
	b.StopTimer()
	emit(b, "Table 1", report.FeedSummaryTable(rows))
}

func BenchmarkTable2Purity(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.PurityRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Purity(ds)
	}
	b.StopTimer()
	emit(b, "Table 2", report.PurityTable(rows))
}

func BenchmarkTable3Coverage(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var all, live, tagged []analysis.CoverageRow
	for i := 0; i < b.N; i++ {
		all = analysis.Coverage(ds, analysis.ClassAll)
		live = analysis.Coverage(ds, analysis.ClassLive)
		tagged = analysis.Coverage(ds, analysis.ClassTagged)
	}
	b.StopTimer()
	emit(b, "Table 3", report.CoverageTable(all, live, tagged))
}

func BenchmarkFigure1DistinctVsExclusive(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var live, tagged []analysis.CoverageRow
	for i := 0; i < b.N; i++ {
		live = analysis.Coverage(ds, analysis.ClassLive)
		tagged = analysis.Coverage(ds, analysis.ClassTagged)
	}
	b.StopTimer()
	emit(b, "Figure 1 (live)", report.ExclusiveScatter(live))
	emit(b, "Figure 1 (tagged)", report.ExclusiveScatter(tagged))
}

func BenchmarkFigure2PairwiseIntersection(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var live, tagged *analysis.Matrix
	for i := 0; i < b.N; i++ {
		live = analysis.Intersections(ds, analysis.ClassLive)
		tagged = analysis.Intersections(ds, analysis.ClassTagged)
	}
	b.StopTimer()
	emit(b, "Figure 2 (live)", report.MatrixTable(live))
	emit(b, "Figure 2 (tagged)", report.MatrixTable(tagged))
}

func BenchmarkFigure3VolumeCoverage(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.VolumeRow
	for i := 0; i < b.N; i++ {
		rows = analysis.VolumeCoverage(ds)
	}
	b.StopTimer()
	emit(b, "Figure 3", report.VolumeBars(rows))
}

func BenchmarkFigure4ProgramCoverage(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var m *analysis.Matrix
	for i := 0; i < b.N; i++ {
		m = analysis.ProgramCoverage(ds)
	}
	b.StopTimer()
	emit(b, "Figure 4", report.MatrixTable(m))
}

func BenchmarkFigure5AffiliateCoverage(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var m *analysis.Matrix
	for i := 0; i < b.N; i++ {
		m = analysis.AffiliateCoverage(ds)
	}
	b.StopTimer()
	emit(b, "Figure 5", report.MatrixTable(m))
}

func BenchmarkFigure6RevenueCoverage(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.RevenueRow
	var total float64
	for i := 0; i < b.N; i++ {
		rows, total = analysis.RevenueCoverage(ds)
	}
	b.StopTimer()
	emit(b, "Figure 6", report.RevenueBars(rows, total))
}

func BenchmarkFigure7VariationDistance(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var p *analysis.PairwiseDist
	for i := 0; i < b.N; i++ {
		p = analysis.VariationDistances(ds)
	}
	b.StopTimer()
	emit(b, "Figure 7", report.PairwiseTable(p))
}

func BenchmarkFigure8KendallTau(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var p *analysis.PairwiseDist
	for i := 0; i < b.N; i++ {
		p = analysis.KendallTaus(ds)
	}
	b.StopTimer()
	emit(b, "Figure 8", report.PairwiseTable(p))
}

func BenchmarkFigure9FirstAppearance(b *testing.B) {
	ds := benchDataset(b)
	names := analysis.Fig9Feeds(ds)
	b.ResetTimer()
	var rows []analysis.TimingRow
	for i := 0; i < b.N; i++ {
		rows = analysis.FirstAppearance(ds, names)
	}
	b.StopTimer()
	emit(b, "Figure 9", report.TimingTable(rows))
}

func BenchmarkFigure10FirstAppearanceHoneypot(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.TimingRow
	for i := 0; i < b.N; i++ {
		rows = analysis.FirstAppearance(ds, analysis.HoneypotFeeds)
	}
	b.StopTimer()
	emit(b, "Figure 10", report.TimingTable(rows))
}

func BenchmarkFigure11LastAppearance(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.TimingRow
	for i := 0; i < b.N; i++ {
		rows = analysis.LastAppearance(ds, analysis.HoneypotFeeds)
	}
	b.StopTimer()
	emit(b, "Figure 11", report.TimingTable(rows))
}

func BenchmarkFigure12Duration(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []analysis.TimingRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Duration(ds, analysis.HoneypotFeeds)
	}
	b.StopTimer()
	emit(b, "Figure 12", report.TimingTable(rows))
}

// BenchmarkPipelineEndToEnd measures the entire reproduction: world
// generation, feed collection, crawl labeling.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		simulate.Small(uint64(i)).MustRun()
	}
}

// --- Parallel vs pinned serial references --------------------------
//
// The *SerialRef benchmarks run the frozen serial implementations
// (analysis/serialref.go, internal/benchref) against the same inputs
// as their parallel counterparts above, so `-bench 'Table3|SerialRef'`
// shows the speedup inline. cmd/bench automates the comparison and
// tracks it against BENCH_baseline.json.

func BenchmarkTable3CoverageSerialRef(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.CoverageSerial(ds, analysis.ClassAll)
		analysis.CoverageSerial(ds, analysis.ClassLive)
		analysis.CoverageSerial(ds, analysis.ClassTagged)
	}
}

func BenchmarkTable2PuritySerialRef(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.PuritySerial(ds)
	}
}

func BenchmarkFigure2PairwiseIntersectionSerialRef(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.IntersectionsSerial(ds, analysis.ClassLive)
		analysis.IntersectionsSerial(ds, analysis.ClassTagged)
	}
}

func BenchmarkCollectionEngine(b *testing.B) {
	ds := benchDataset(b)
	cfg := simulate.Default(2010).Collection
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mailflow.New(ds.World, cfg).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectionEngineSerialRef(b *testing.B) {
	ds := benchDataset(b)
	cfg := simulate.Default(2010).Collection
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchref.New(ds.World, cfg).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReport measures rendering every table and figure.
func BenchmarkFullReport(b *testing.B) {
	study := core.NewStudy(benchDataset(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := study.WriteReport(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// --- Ablations (DESIGN.md §5) -------------------------------------

// ablate runs a small scenario with a config mutation and reports the
// named metric via b.ReportMetric, so `-bench Ablation` shows how each
// mechanism moves the headline numbers.
func ablate(b *testing.B, mutate func(*simulate.Scenario), metric func(*analysis.Dataset) (float64, string)) {
	b.Helper()
	var value float64
	var unit string
	for i := 0; i < b.N; i++ {
		scen := simulate.Small(4242)
		if mutate != nil {
			mutate(&scen)
		}
		ds := scen.MustRun()
		value, unit = metric(ds)
	}
	b.ReportMetric(value, unit)
}

// huVolumeRatio returns Hu samples relative to the mean honeypot feed.
func huVolumeRatio(ds *analysis.Dataset) (float64, string) {
	hu := float64(ds.Feed("Hu").Samples())
	var hp float64
	for _, n := range []string{"mx1", "mx3", "Ac1"} {
		hp += float64(ds.Feed(n).Samples())
	}
	return hu / (hp / 3), "hu/honeypot-samples"
}

// BenchmarkAblationFilterFeedback disables the webmail provider's
// report-driven filtering: Hu's volume balloons while its unique-domain
// coverage stays put — the mechanism behind the paper's "smallest feed,
// biggest coverage" paradox.
func BenchmarkAblationFilterFeedback(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		ablate(b, nil, huVolumeRatio)
	})
	b.Run("off", func(b *testing.B) {
		ablate(b, func(s *simulate.Scenario) {
			s.Collection.FilterAfterReport = 0
		}, huVolumeRatio)
	})
}

// BenchmarkAblationPoisoning toggles the Rustock episode; without it,
// Bot and mx2 regain normal DNS purity.
func BenchmarkAblationPoisoning(b *testing.B) {
	metric := func(ds *analysis.Dataset) (float64, string) {
		for _, r := range analysis.Purity(ds) {
			if r.Name == "Bot" {
				return r.DNS * 100, "bot-dns-%"
			}
		}
		return 0, "bot-dns-%"
	}
	b.Run("on", func(b *testing.B) { ablate(b, nil, metric) })
	b.Run("off", func(b *testing.B) {
		ablate(b, func(s *simulate.Scenario) {
			s.Collection.PoisonBotArrivals = 0
			s.Collection.PoisonMX2Arrivals = 0
		}, metric)
	})
}

// BenchmarkAblationStealthLead removes the deliverability-testing
// lead-in; honeypot first-appearance latency collapses toward zero and
// the Hu/dbl early-warning advantage disappears.
func BenchmarkAblationStealthLead(b *testing.B) {
	metric := func(ds *analysis.Dataset) (float64, string) {
		rows := analysis.FirstAppearance(ds,
			[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
		for _, r := range rows {
			if r.Name == "mx1" {
				return r.Summary.Median, "mx1-median-hours"
			}
		}
		return 0, "mx1-median-hours"
	}
	b.Run("on", func(b *testing.B) { ablate(b, nil, metric) })
	b.Run("off", func(b *testing.B) {
		ablate(b, func(s *simulate.Scenario) {
			s.Collection.StealthLeadMinDays = 0
			s.Collection.StealthLeadMaxDays = 0
		}, metric)
	})
}

// BenchmarkAblationMegaCampaigns removes the months-long blasts; the
// Mail column of the proportionality analysis degrades for every feed
// because a five-day oracle window no longer samples the dominant
// volume.
func BenchmarkAblationMegaCampaigns(b *testing.B) {
	metric := func(ds *analysis.Dataset) (float64, string) {
		vd := analysis.VariationDistances(ds)
		for i, name := range vd.Names {
			if name == "mx2" {
				return vd.Value[i][0], "mx2-vs-mail-delta"
			}
		}
		return 1, "mx2-vs-mail-delta"
	}
	b.Run("on", func(b *testing.B) { ablate(b, nil, metric) })
	b.Run("off", func(b *testing.B) {
		ablate(b, func(s *simulate.Scenario) {
			s.Ecosystem.MegaCampaigns = 0
		}, metric)
	})
}

// BenchmarkAblationBlacklistLatency measures how dbl's onset ranking
// responds to a week of listing delay.
func BenchmarkAblationBlacklistLatency(b *testing.B) {
	metric := func(ds *analysis.Dataset) (float64, string) {
		rows := analysis.FirstAppearance(ds,
			[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
		for _, r := range rows {
			if r.Name == "dbl" {
				return r.Summary.Median, "dbl-median-hours"
			}
		}
		return 0, "dbl-median-hours"
	}
	b.Run("fast", func(b *testing.B) { ablate(b, nil, metric) })
	b.Run("slow", func(b *testing.B) {
		ablate(b, func(s *simulate.Scenario) {
			s.Collection.DBL.LatencyMedianHours = 168
		}, metric)
	})
}

// BenchmarkCollectionOnly isolates the mailflow engine (feed
// collection over a fixed world) from generation and labeling.
func BenchmarkCollectionOnly(b *testing.B) {
	scen := simulate.Small(11)
	world := ecosystem.MustGenerate(scen.Ecosystem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mailflow.New(world, scen.Collection).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelingOnly isolates crawl labeling.
func BenchmarkLabelingOnly(b *testing.B) {
	scen := simulate.Small(11)
	world := ecosystem.MustGenerate(scen.Ecosystem)
	res, err := mailflow.New(world, scen.Collection).Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.BuildLabels(world, res)
	}
}
