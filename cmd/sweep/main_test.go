package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tasterschoice/internal/distsweep"
	"tasterschoice/internal/resilient"
)

// The sweep core's own tests live in internal/distsweep (resume
// byte-identity, checkpoint parameter matching, failure counting).
// Here we pin the -retry-failed flag's contract: a transiently
// failing seed is re-run within the same sweep and only a seed that
// exhausts its retry budget lands in the failed count.

// flakySeed fails its first n attempts for one seed index, then
// succeeds; all other seeds succeed immediately.
type flakySeed struct {
	mu       sync.Mutex
	seed     int
	fails    int
	calls    map[int]int
	permFail bool
}

func (f *flakySeed) run(i int, seed uint64) (map[string]float64, error) {
	f.mu.Lock()
	f.calls[i]++
	n := f.calls[i]
	f.mu.Unlock()
	if i == f.seed && (f.permFail || n <= f.fails) {
		return nil, errors.New("transient blip")
	}
	return map[string]float64{"Hu tagged coverage %": 50 + float64(i)}, nil
}

func TestRetryFailedReRunsTransientSeeds(t *testing.T) {
	var slept []time.Duration
	flaky := &flakySeed{seed: 2, fails: 2, calls: map[int]int{}}
	cfg := distsweep.Config{
		Seeds:        4,
		Small:        true,
		Workers:      1,
		RetryFailed:  2,
		RetryBackoff: resilient.Backoff{Base: time.Millisecond, Max: time.Millisecond},
		Sleep:        func(d time.Duration) { slept = append(slept, d) },
	}
	failed, err := distsweep.RunLocal(context.Background(), cfg, flaky.run, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0 (retries should have healed seed 2)", failed)
	}
	if got := flaky.calls[2]; got != 3 {
		t.Fatalf("seed 2 ran %d times, want 3 (two failures + success)", got)
	}
	if len(slept) != 2 {
		t.Fatalf("retry backoff slept %d times, want 2", len(slept))
	}
}

func TestRetryFailedBudgetExhaustedCountsSeed(t *testing.T) {
	flaky := &flakySeed{seed: 1, permFail: true, calls: map[int]int{}}
	cfg := distsweep.Config{
		Seeds:        3,
		Small:        true,
		Workers:      1,
		RetryFailed:  2,
		RetryBackoff: resilient.Backoff{Base: time.Millisecond, Max: time.Millisecond},
		Sleep:        func(time.Duration) {},
	}
	failed, err := distsweep.RunLocal(context.Background(), cfg, flaky.run, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if got := flaky.calls[1]; got != 3 {
		t.Fatalf("seed 1 attempted %d times, want 3 (the full retry budget)", got)
	}
}

// TestValidateFlags pins the up-front flag validation: a negative
// retry budget and an unwritable or nonsensical checkpoint path are
// refused before any seed runs.
func TestValidateFlags(t *testing.T) {
	if err := validate(-1, ""); err == nil {
		t.Fatal("negative -retry-failed accepted")
	}
	if err := validate(0, ""); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	dir := t.TempDir()
	if err := validate(2, filepath.Join(dir, "deep", "nested", "sweep.ckpt")); err != nil {
		t.Fatalf("creatable nested checkpoint path rejected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "deep", "nested")); err != nil {
		t.Fatalf("validate did not create the checkpoint directory: %v", err)
	}
	if err := validate(0, dir); err == nil {
		t.Fatal("directory accepted as a checkpoint file path")
	}
	// A regular file in the middle of the path cannot become a
	// directory.
	if err := os.WriteFile(filepath.Join(dir, "plain"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validate(0, filepath.Join(dir, "plain", "sweep.ckpt")); err == nil {
		t.Fatal("path through a regular file accepted")
	}

	// An unwritable parent is refused up front.
	locked := filepath.Join(dir, "locked")
	if err := os.Mkdir(locked, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(locked, 0o755) //nolint:errcheck
	if os.Getuid() != 0 {
		if err := validate(0, filepath.Join(locked, "sweep.ckpt")); err == nil {
			t.Fatal("checkpoint in read-only directory accepted")
		}
	}
}

// TestRetryDisabledByDefault pins the seed behaviour: without
// -retry-failed a failing seed is tried exactly once.
func TestRetryDisabledByDefault(t *testing.T) {
	flaky := &flakySeed{seed: 0, permFail: true, calls: map[int]int{}}
	failed, err := distsweep.RunLocal(context.Background(),
		distsweep.Config{Seeds: 2, Small: true, Workers: 1}, flaky.run, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 || flaky.calls[0] != 1 {
		t.Fatalf("failed=%d calls=%d, want 1 and 1", failed, flaky.calls[0])
	}
}
