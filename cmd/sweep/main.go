// Command sweep quantifies the reproduction's stability: it runs the
// scenario across many seeds and reports mean and spread for each
// headline metric, so "the shape holds" is a measured claim rather
// than a single lucky seed (EXPERIMENTS.md cites this).
//
// Usage:
//
//	sweep [-seeds N] [-small] [-workers K]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/core"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
)

// metricNames is printed in this order.
var metricNames = []string{
	"Hu tagged coverage %",
	"uribl tagged volume %",
	"Bot DNS purity %",
	"mx2 DNS purity %",
	"Hu/mx1 sample ratio",
	"Hyb exclusive live %",
	"mx2-Mail variation distance",
	"Hu median onset (h)",
	"mx1 median onset (h)",
}

func main() {
	seeds := flag.Int("seeds", 10, "number of seeds to run")
	small := flag.Bool("small", true, "use the reduced scenario (default; full scale is slower)")
	workers := flag.Int("workers", 4, "concurrent scenario runs")
	flag.Parse()

	results := make([]map[string]float64, *seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, *workers)
	for i := 0; i < *seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := uint64(1000 + i*7919)
			scen := simulate.Default(seed)
			if *small {
				scen = simulate.Small(seed)
			}
			ds, err := scen.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: seed %d: %v\n", seed, err)
				return
			}
			results[i] = metrics(core.NewStudy(ds))
		}(i)
	}
	wg.Wait()

	rows := make([][]string, 0, len(metricNames))
	for _, name := range metricNames {
		var vals []float64
		for _, r := range results {
			if r == nil {
				continue
			}
			if v, ok := r[name]; ok && !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			continue
		}
		mean, sd := meanStd(vals)
		lo, hi := minMax(vals)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f", mean),
			fmt.Sprintf("%.2f", sd),
			fmt.Sprintf("%.2f", lo),
			fmt.Sprintf("%.2f", hi),
			fmt.Sprintf("%d", len(vals)),
		})
	}
	fmt.Printf("headline metrics across %d seeds:\n\n", *seeds)
	fmt.Println(report.Table([]string{"Metric", "Mean", "StdDev", "Min", "Max", "N"}, rows))
}

// metrics extracts the headline numbers from one run.
func metrics(s *core.Study) map[string]float64 {
	out := map[string]float64{}

	// Coverage.
	union := map[string]bool{}
	for _, name := range s.DS.Result.Order {
		for d := range analysis.FeedDomains(s.DS, name, analysis.ClassTagged) {
			union[d] = true
		}
	}
	for _, r := range analysis.Coverage(s.DS, analysis.ClassTagged) {
		if r.Name == "Hu" && len(union) > 0 {
			out["Hu tagged coverage %"] = 100 * float64(r.Total) / float64(len(union))
		}
	}
	for _, r := range analysis.Coverage(s.DS, analysis.ClassLive) {
		if r.Name == "Hyb" && r.Total > 0 {
			out["Hyb exclusive live %"] = 100 * float64(r.Exclusive) / float64(r.Total)
		}
	}

	// Purity.
	for _, r := range s.Table2() {
		switch r.Name {
		case "Bot":
			out["Bot DNS purity %"] = r.DNS * 100
		case "mx2":
			out["mx2 DNS purity %"] = r.DNS * 100
		}
	}

	// Volume coverage.
	for _, r := range s.Figure3() {
		if r.Name == "uribl" {
			out["uribl tagged volume %"] = r.TaggedPct * 100
		}
	}

	// Sample ratio.
	if mx1 := s.DS.Feed("mx1").Samples(); mx1 > 0 {
		out["Hu/mx1 sample ratio"] = float64(s.DS.Feed("Hu").Samples()) / float64(mx1)
	}

	// Proportionality.
	vd := s.Figure7()
	for i, n := range vd.Names {
		if n == "mx2" {
			out["mx2-Mail variation distance"] = vd.Value[i][0]
		}
	}

	// Timing.
	rows := analysis.FirstAppearance(s.DS,
		[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
	for _, r := range rows {
		if r.Summary.N == 0 {
			continue
		}
		switch r.Name {
		case "Hu":
			out["Hu median onset (h)"] = r.Summary.Median
		case "mx1":
			out["mx1 median onset (h)"] = r.Summary.Median
		}
	}
	return out
}

func meanStd(vals []float64) (mean, sd float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if len(vals) > 1 {
		for _, v := range vals {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd / float64(len(vals)-1))
	}
	return mean, sd
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
