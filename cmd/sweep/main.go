// Command sweep quantifies the reproduction's stability: it runs the
// scenario across many seeds and reports mean and spread for each
// headline metric, so "the shape holds" is a measured claim rather
// than a single lucky seed (EXPERIMENTS.md cites this).
//
// With -checkpoint the sweep is resumable: each finished seed's
// metrics are saved through the crash-safe checkpoint store, and a
// restarted sweep re-runs only the seeds that are missing — the final
// table is identical to an uninterrupted run.
//
// Usage:
//
//	sweep [-seeds N] [-small] [-workers K] [-checkpoint PATH]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/checkpoint"
	"tasterschoice/internal/core"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/obs"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
)

// metricNames is printed in this order.
var metricNames = []string{
	"Hu tagged coverage %",
	"uribl tagged volume %",
	"Bot DNS purity %",
	"mx2 DNS purity %",
	"Hu/mx1 sample ratio",
	"Hyb exclusive live %",
	"mx2-Mail variation distance",
	"Hu median onset (h)",
	"mx1 median onset (h)",
}

// stateVersion is the sweep checkpoint payload version.
const stateVersion = 1

// config parameterises one sweep.
type config struct {
	Seeds          int
	Small          bool
	Workers        int
	CheckpointPath string
}

// sweepState is the checkpointed progress: the parameters (so a resume
// against different flags starts fresh) and each finished seed's
// metrics, keyed by seed index.
type sweepState struct {
	Seeds   int                           `json:"seeds"`
	Small   bool                          `json:"small"`
	Results map[string]map[string]float64 `json:"results"`
}

// seedRunner produces one seed's metrics; tests inject a fake.
type seedRunner func(seedIndex int, seed uint64) (map[string]float64, error)

// scenarioRunner runs the real simulation. The metrics aggregate over
// every seed the process runs; the tracer (which may be nil) collects
// engine-phase spans across all concurrent runs.
func scenarioRunner(small bool, m mailflow.Metrics, tr *obs.Tracer) seedRunner {
	return func(_ int, seed uint64) (map[string]float64, error) {
		scen := simulate.Default(seed)
		if small {
			scen = simulate.Small(seed)
		}
		scen.Metrics = m
		scen.Tracer = tr
		ds, err := scen.Run()
		if err != nil {
			return nil, err
		}
		return metrics(core.NewStudy(ds)), nil
	}
}

// seedFor maps a seed index to its scenario seed.
func seedFor(i int) uint64 { return uint64(1000 + i*7919) }

func main() {
	seeds := flag.Int("seeds", 10, "number of seeds to run")
	small := flag.Bool("small", true, "use the reduced scenario (default; full scale is slower)")
	workers := flag.Int("workers", 4, "concurrent scenario runs")
	ckpt := flag.String("checkpoint", "", "checkpoint file: finished seeds persist and a rerun resumes")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address while the sweep runs (empty: disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Seeds run concurrently, so spans from different simulated windows
	// would interleave on a simclock-anchored timeline; the wall clock
	// keeps the sweep's trace readable.
	var m mailflow.Metrics
	var tracer *obs.Tracer
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		m = mailflow.NewMetrics(reg)
		tracer = obs.NewTracer(4096, nil)
		ms, err := obs.Serve(*metricsAddr, reg, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	cfg := config{Seeds: *seeds, Small: *small, Workers: *workers, CheckpointPath: *ckpt}
	failed, err := runSweep(ctx, cfg, scenarioRunner(*small, m, tracer), os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "failed seeds: %d\n", failed)
		os.Exit(1)
	}
}

// runSweep executes the sweep, resuming from the checkpoint when one
// is configured and present, and writes the metrics table to out. It
// returns the number of seeds whose runs failed; a non-nil error means
// the sweep itself was interrupted (finished seeds are checkpointed).
func runSweep(ctx context.Context, cfg config, run seedRunner, out io.Writer) (int, error) {
	state := sweepState{Seeds: cfg.Seeds, Small: cfg.Small, Results: map[string]map[string]float64{}}
	var store *checkpoint.Store
	if cfg.CheckpointPath != "" {
		store = checkpoint.NewStore(cfg.CheckpointPath)
		var prev sweepState
		_, err := store.LoadJSON(&prev)
		switch {
		case err == nil:
			if prev.Seeds == cfg.Seeds && prev.Small == cfg.Small && prev.Results != nil {
				state = prev
			}
			// Parameter mismatch: the checkpoint belongs to a different
			// sweep; start fresh (the first save overwrites it).
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// First run (or both generations corrupt and quarantined):
			// nothing to resume.
		default:
			return 0, fmt.Errorf("loading checkpoint: %w", err)
		}
	}

	var mu sync.Mutex // guards state and failed
	failed := 0
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	for i := 0; i < cfg.Seeds; i++ {
		key := strconv.Itoa(i)
		mu.Lock()
		_, done := state.Results[key]
		mu.Unlock()
		if done {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			seed := seedFor(i)
			m, err := run(i, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: seed %d: %v\n", seed, err)
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			mu.Lock()
			state.Results[key] = m
			if store != nil {
				if serr := store.SaveJSON(stateVersion, state); serr != nil {
					fmt.Fprintf(os.Stderr, "sweep: checkpoint: %v\n", serr)
				}
			}
			mu.Unlock()
		}(i, key)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return failed, err
	}

	// Seeds that were attempted but produced nothing (and were not
	// counted above because the run predates this process) stay absent
	// from Results; only this process's failures are counted.
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(out, "headline metrics across %d seeds:\n\n", cfg.Seeds)
	fmt.Fprintln(out, report.Table([]string{"Metric", "Mean", "StdDev", "Min", "Max", "N"}, tableRows(cfg.Seeds, state.Results)))
	return failed, nil
}

// tableRows folds per-seed metrics into the stats table, iterating
// seeds in index order so the output is deterministic.
func tableRows(seeds int, results map[string]map[string]float64) [][]string {
	rows := make([][]string, 0, len(metricNames))
	for _, name := range metricNames {
		var vals []float64
		for i := 0; i < seeds; i++ {
			r := results[strconv.Itoa(i)]
			if r == nil {
				continue
			}
			if v, ok := r[name]; ok && !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			continue
		}
		mean, sd := meanStd(vals)
		lo, hi := minMax(vals)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f", mean),
			fmt.Sprintf("%.2f", sd),
			fmt.Sprintf("%.2f", lo),
			fmt.Sprintf("%.2f", hi),
			fmt.Sprintf("%d", len(vals)),
		})
	}
	return rows
}

// metrics extracts the headline numbers from one run.
func metrics(s *core.Study) map[string]float64 {
	out := map[string]float64{}

	// Coverage.
	union := map[string]bool{}
	for _, name := range s.DS.Result.Order {
		for d := range analysis.FeedDomains(s.DS, name, analysis.ClassTagged) {
			union[d] = true
		}
	}
	for _, r := range analysis.Coverage(s.DS, analysis.ClassTagged) {
		if r.Name == "Hu" && len(union) > 0 {
			out["Hu tagged coverage %"] = 100 * float64(r.Total) / float64(len(union))
		}
	}
	for _, r := range analysis.Coverage(s.DS, analysis.ClassLive) {
		if r.Name == "Hyb" && r.Total > 0 {
			out["Hyb exclusive live %"] = 100 * float64(r.Exclusive) / float64(r.Total)
		}
	}

	// Purity.
	for _, r := range s.Table2() {
		switch r.Name {
		case "Bot":
			out["Bot DNS purity %"] = r.DNS * 100
		case "mx2":
			out["mx2 DNS purity %"] = r.DNS * 100
		}
	}

	// Volume coverage.
	for _, r := range s.Figure3() {
		if r.Name == "uribl" {
			out["uribl tagged volume %"] = r.TaggedPct * 100
		}
	}

	// Sample ratio.
	if mx1 := s.DS.Feed("mx1").Samples(); mx1 > 0 {
		out["Hu/mx1 sample ratio"] = float64(s.DS.Feed("Hu").Samples()) / float64(mx1)
	}

	// Proportionality.
	vd := s.Figure7()
	for i, n := range vd.Names {
		if n == "mx2" {
			out["mx2-Mail variation distance"] = vd.Value[i][0]
		}
	}

	// Timing.
	rows := analysis.FirstAppearance(s.DS,
		[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
	for _, r := range rows {
		if r.Summary.N == 0 {
			continue
		}
		switch r.Name {
		case "Hu":
			out["Hu median onset (h)"] = r.Summary.Median
		case "mx1":
			out["mx1 median onset (h)"] = r.Summary.Median
		}
	}
	return out
}

func meanStd(vals []float64) (mean, sd float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if len(vals) > 1 {
		for _, v := range vals {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd / float64(len(vals)-1))
	}
	return mean, sd
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
