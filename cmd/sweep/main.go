// Command sweep quantifies the reproduction's stability: it runs the
// scenario across many seeds and reports mean and spread for each
// headline metric, so "the shape holds" is a measured claim rather
// than a single lucky seed (EXPERIMENTS.md cites this).
//
// With -checkpoint the sweep is resumable: each finished seed's
// metrics are saved through the crash-safe checkpoint store, and a
// restarted sweep re-runs only the seeds that are missing — the final
// table is identical to an uninterrupted run. With -retry-failed N,
// transiently failed seeds are re-run up to N extra times (with
// backoff) before being reported in the "failed seeds: N" non-zero
// exit.
//
// The sweep core lives in internal/distsweep, shared with cmd/sweepd,
// which scales the same sweep across worker processes.
//
// Usage:
//
//	sweep [-seeds N] [-small] [-workers K] [-checkpoint PATH] [-retry-failed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"tasterschoice/internal/checkpoint"
	"tasterschoice/internal/distsweep"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/obs"
)

// validate rejects flag values the sweep would otherwise only trip
// over mid-run: a negative retry budget, and a checkpoint destination
// that cannot be written — better refused now than discovered when the
// first finished seed tries to persist.
func validate(retryFailed int, ckpt string) error {
	if retryFailed < 0 {
		return fmt.Errorf("-retry-failed must be >= 0, got %d", retryFailed)
	}
	if ckpt == "" {
		return nil
	}
	if fi, err := os.Stat(ckpt); err == nil && fi.IsDir() {
		return fmt.Errorf("-checkpoint %s is a directory, want a file path", ckpt)
	}
	// The store MkdirAlls the parent on save; do it now so a bad path
	// fails before any seeds are spent, then prove the directory is
	// writable with a probe file.
	dir := filepath.Dir(ckpt)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("-checkpoint: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".sweep-probe-*")
	if err != nil {
		return fmt.Errorf("-checkpoint: directory %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name()) //nolint:errcheck
	return nil
}

func main() {
	seeds := flag.Int("seeds", 10, "number of seeds to run")
	small := flag.Bool("small", true, "use the reduced scenario (default; full scale is slower)")
	workers := flag.Int("workers", 4, "concurrent scenario runs")
	ckpt := flag.String("checkpoint", "", "checkpoint file: finished seeds persist and a rerun resumes")
	retryFailed := flag.Int("retry-failed", 0, "re-run a transiently failed seed up to N extra times before counting it failed")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address while the sweep runs (empty: disabled)")
	flag.Parse()
	if err := validate(*retryFailed, *ckpt); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Seeds run concurrently, so spans from different simulated windows
	// would interleave on a simclock-anchored timeline; the wall clock
	// keeps the sweep's trace readable.
	var m mailflow.Metrics
	var tracer *obs.Tracer
	var storeMetrics checkpoint.Metrics
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		m = mailflow.NewMetrics(reg)
		storeMetrics = checkpoint.NewMetrics(reg, "sweep")
		tracer = obs.NewTracer(4096, nil)
		ms, err := obs.Serve(*metricsAddr, reg, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	cfg := distsweep.Config{
		Seeds:          *seeds,
		Small:          *small,
		Workers:        *workers,
		CheckpointPath: *ckpt,
		RetryFailed:    *retryFailed,
		Errw:           os.Stderr,
		StoreMetrics:   storeMetrics,
	}
	failed, err := distsweep.RunLocal(ctx, cfg, distsweep.ScenarioRunner(*small, m, tracer), os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "failed seeds: %d\n", failed)
		os.Exit(1)
	}
}
