// Command tasters runs the full Taster's Choice reproduction: it
// generates the synthetic spam ecosystem, collects the ten feeds over
// the three-month window, crawls and labels every feed domain, and
// prints every table and figure from the paper's evaluation.
//
// Usage:
//
//	tasters [-seed N] [-small] [-recommend]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tasterschoice/internal/core"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/obs"
	"tasterschoice/internal/simclock"
	"tasterschoice/internal/simulate"
)

func main() {
	seed := flag.Uint64("seed", 2010, "scenario seed (same seed, same report)")
	small := flag.Bool("small", false, "run the reduced test-scale scenario")
	recommend := flag.Bool("recommend", false, "also print the feed advisor's rankings")
	csvDir := flag.String("csv", "", "also write every table/figure as CSV into this directory")
	scale := flag.Float64("scale", 0, "override the ecosystem scale factor (0 = scenario default)")
	ablate := flag.String("ablate", "", "run an ablation instead of the report: poison, feedback, stealth, mega, bl-latency")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address for the run's duration (empty: disabled)")
	flag.Parse()

	scen := simulate.Default(*seed)
	if *small {
		scen = simulate.Small(*seed)
	}
	if *scale > 0 {
		scen.Ecosystem.Scale = *scale
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		scen.Metrics = mailflow.NewMetrics(reg)
		// Simulation spans run on a simclock-anchored clock: timestamps
		// start at the paper window's origin and advance in real time,
		// so a trace dump reads on the simulated timeline.
		begin := time.Now()
		scen.Tracer = obs.NewTracer(0, func() time.Time {
			return simclock.PaperStart.Add(time.Since(begin))
		})
		ms, err := obs.Serve(*metricsAddr, reg, scen.Tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tasters: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	if *ablate != "" {
		if err := runAblation(scen, *ablate); err != nil {
			fmt.Fprintf(os.Stderr, "tasters: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	ds, err := scen.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tasters: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Taster's Choice reproduction — scenario %q, seed %d\n", scen.Name, *seed)
	fmt.Printf("window %s .. %s, %d feed domains labeled, pipeline %.1fs\n",
		scen.Ecosystem.Window.Start.Format("2006-01-02"),
		scen.Ecosystem.Window.End.Format("2006-01-02"),
		ds.Labels.Len(), time.Since(start).Seconds())
	fmt.Printf("world: %s\n\n", ds.World.Stats())

	study := core.NewStudy(ds)
	if err := study.WriteReport(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tasters: %v\n", err)
		os.Exit(1)
	}

	if *csvDir != "" {
		if err := study.WriteCSVDir(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "tasters: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CSV outputs to %s\n", *csvDir)
	}

	if *recommend {
		fmt.Println("== Feed advisor (paper §5, derived from this run) ==")
		for _, q := range []core.Question{
			core.QCoverage, core.QPurity, core.QOnset,
			core.QCampaignEnd, core.QProportionality,
		} {
			fmt.Printf("%s:\n", q)
			for _, r := range study.Recommend(q) {
				fmt.Printf("  %2d. %-5s %s\n", r.Rank, r.Feed, r.Note)
			}
		}
	}
}

// runAblation runs the scenario twice — baseline and with one
// mechanism disabled — and prints the headline-metric comparison.
func runAblation(scen simulate.Scenario, name string) error {
	variant := scen
	switch name {
	case "poison":
		variant.Collection.PoisonBotArrivals = 0
		variant.Collection.PoisonMX2Arrivals = 0
	case "feedback":
		variant.Collection.FilterAfterReport = 0
	case "stealth":
		variant.Collection.StealthLeadMinDays = 0
		variant.Collection.StealthLeadMaxDays = 0
	case "mega":
		variant.Ecosystem.MegaCampaigns = 0
	case "bl-latency":
		variant.Collection.DBL.LatencyMedianHours = 168
		variant.Collection.URIBL.LatencyMedianHours = 168
	default:
		return fmt.Errorf("unknown ablation %q (poison, feedback, stealth, mega, bl-latency)", name)
	}
	baseDS, err := scen.Run()
	if err != nil {
		return err
	}
	varDS, err := variant.Run()
	if err != nil {
		return err
	}
	fmt.Printf("ablation %q, scenario %q:\n\n", name, scen.Name)
	core.WriteComparison(os.Stdout, "baseline", "without "+name,
		core.Compare(core.NewStudy(baseDS), core.NewStudy(varDS)))
	return nil
}
