package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/simclock"
)

// writeTestFeed writes a two-domain blacklist TSV and returns its path.
func writeTestFeed(t *testing.T) string {
	t.Helper()
	f := feeds.New("dbl", feeds.KindBlacklist, false, false)
	f.ObserveOnce(simclock.PaperStart, "cheappills.com")
	f.ObserveOnce(simclock.PaperStart, "replicas.net")
	path := filepath.Join(t.TempDir(), "dbl.tsv")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteTSV(out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// scrapeCounters GETs a /metrics endpoint and returns every non-histogram
// sample line parsed into name{labels} -> value.
func scrapeCounters(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpoint is the acceptance test for the -metrics flag:
// setup with a ":0" metrics address must serve /metrics, /debug/vars
// and /debug/pprof/, and the scraped counters must reflect queries the
// DNS server actually answered.
func TestMetricsEndpoint(t *testing.T) {
	srv, addr, ms, err := setup(options{
		feedPath: writeTestFeed(t), zone: "dbl.example",
		listen: "127.0.0.1:0", ttl: 300, metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer ms.Close()

	c := dnsbl.NewClient(addr.String(), "dbl.example", 1)
	c.Timeout = 3 * time.Second
	if listed, err := c.Listed("cheappills.com"); err != nil || !listed {
		t.Fatalf("Listed = %v, %v", listed, err)
	}
	if listed, err := c.Listed("innocent.org"); err != nil || listed {
		t.Fatalf("Listed(unlisted) = %v, %v", listed, err)
	}

	base := "http://" + ms.Addr().String()
	got := scrapeCounters(t, base+"/metrics")
	queriesKey := `dnsbl_server_queries_total{zone="dbl.example"}`
	hitsKey := `dnsbl_server_hits_total{zone="dbl.example"}`
	if got[queriesKey] != 2 {
		t.Errorf("%s = %v, want 2 (scrape: %v)", queriesKey, got[queriesKey], got)
	}
	if got[hitsKey] != 1 {
		t.Errorf("%s = %v, want 1", hitsKey, got[hitsKey])
	}

	// /debug/vars must be valid JSON carrying the "metrics" mirror.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars JSON: %v", err)
	}
	mirror, ok := vars["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing metrics mirror: %v", vars["metrics"])
	}
	// The expvar mirror keys series as name{label=value} (unquoted).
	expvarKey := "dnsbl_server_queries_total{zone=dbl.example}"
	if v, _ := mirror[expvarKey].(float64); v != 2 {
		t.Errorf("expvar %s = %v, want 2", expvarKey, mirror[expvarKey])
	}

	// pprof index must answer.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

// TestSetupOverloadWiring pins the -workers/-max-inflight flag family:
// a protected server still answers queries correctly, and the overload
// instruments show up on /metrics with the admissions it counted.
func TestSetupOverloadWiring(t *testing.T) {
	srv, addr, ms, err := setup(options{
		feedPath: writeTestFeed(t), zone: "dbl.example",
		listen: "127.0.0.1:0", ttl: 300, metricsAddr: "127.0.0.1:0",
		workers: 2, queueDepth: 32, maxInflight: 16,
		rate: 10000, fairBuckets: 4, fairRate: 10000, seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer ms.Close()

	c := dnsbl.NewClient(addr.String(), "dbl.example", 1)
	c.Timeout = 3 * time.Second
	if listed, err := c.Listed("cheappills.com"); err != nil || !listed {
		t.Fatalf("Listed = %v, %v", listed, err)
	}
	if listed, err := c.Listed("innocent.org"); err != nil || listed {
		t.Fatalf("Listed(unlisted) = %v, %v", listed, err)
	}

	got := scrapeCounters(t, "http://"+ms.Addr().String()+"/metrics")
	admitted := 0.0
	for k, v := range got {
		if strings.HasPrefix(k, "dnsbl_queue_admitted_total") {
			admitted += v
		}
	}
	if admitted != 2 {
		t.Errorf("queue admitted = %v, want 2 (scrape: %v)", admitted, got)
	}
}

// TestSetupWithoutMetrics pins the flag's default-off behavior.
func TestSetupWithoutMetrics(t *testing.T) {
	srv, addr, ms, err := setup(options{
		feedPath: writeTestFeed(t), zone: "dbl.example",
		listen: "127.0.0.1:0", ttl: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if ms != nil {
		t.Fatal("metrics server started without -metrics")
	}
	c := dnsbl.NewClient(addr.String(), "dbl.example", 1)
	c.Timeout = 3 * time.Second
	if listed, err := c.Listed("replicas.net"); err != nil || !listed {
		t.Fatalf("Listed = %v, %v", listed, err)
	}
}
