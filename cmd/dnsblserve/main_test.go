package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/dnsblplane"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/simclock"
)

// writeTestFeed writes a two-domain blacklist TSV and returns its path.
func writeTestFeed(t *testing.T) string {
	t.Helper()
	f := feeds.New("dbl", feeds.KindBlacklist, false, false)
	f.ObserveOnce(simclock.PaperStart, "cheappills.com")
	f.ObserveOnce(simclock.PaperStart, "replicas.net")
	path := filepath.Join(t.TempDir(), "dbl.tsv")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteTSV(out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// scrapeCounters GETs a /metrics endpoint and returns every non-histogram
// sample line parsed into name{labels} -> value.
func scrapeCounters(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpoint is the acceptance test for the -metrics flag:
// setup with a ":0" metrics address must serve /metrics, /debug/vars
// and /debug/pprof/, and the scraped counters must reflect queries the
// DNS server actually answered.
func TestMetricsEndpoint(t *testing.T) {
	srv, addr, ms, err := setup(options{
		feedPath: writeTestFeed(t), zone: "dbl.example",
		listen: "127.0.0.1:0", ttl: 300, metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer ms.Close()

	c := dnsbl.NewClient(addr.String(), "dbl.example", 1)
	c.Timeout = 3 * time.Second
	if listed, err := c.Listed("cheappills.com"); err != nil || !listed {
		t.Fatalf("Listed = %v, %v", listed, err)
	}
	if listed, err := c.Listed("innocent.org"); err != nil || listed {
		t.Fatalf("Listed(unlisted) = %v, %v", listed, err)
	}

	base := "http://" + ms.Addr().String()
	got := scrapeCounters(t, base+"/metrics")
	queriesKey := `dnsbl_server_queries_total{zone="dbl.example"}`
	hitsKey := `dnsbl_server_hits_total{zone="dbl.example"}`
	if got[queriesKey] != 2 {
		t.Errorf("%s = %v, want 2 (scrape: %v)", queriesKey, got[queriesKey], got)
	}
	if got[hitsKey] != 1 {
		t.Errorf("%s = %v, want 1", hitsKey, got[hitsKey])
	}

	// /debug/vars must be valid JSON carrying the "metrics" mirror.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars JSON: %v", err)
	}
	mirror, ok := vars["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing metrics mirror: %v", vars["metrics"])
	}
	// The expvar mirror keys series as name{label=value} (unquoted).
	expvarKey := "dnsbl_server_queries_total{zone=dbl.example}"
	if v, _ := mirror[expvarKey].(float64); v != 2 {
		t.Errorf("expvar %s = %v, want 2", expvarKey, mirror[expvarKey])
	}

	// pprof index must answer.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

// TestSetupOverloadWiring pins the -workers/-max-inflight flag family:
// a protected server still answers queries correctly, and the overload
// instruments show up on /metrics with the admissions it counted.
func TestSetupOverloadWiring(t *testing.T) {
	srv, addr, ms, err := setup(options{
		feedPath: writeTestFeed(t), zone: "dbl.example",
		listen: "127.0.0.1:0", ttl: 300, metricsAddr: "127.0.0.1:0",
		workers: 2, queueDepth: 32, maxInflight: 16,
		rate: 10000, fairBuckets: 4, fairRate: 10000, seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer ms.Close()

	c := dnsbl.NewClient(addr.String(), "dbl.example", 1)
	c.Timeout = 3 * time.Second
	if listed, err := c.Listed("cheappills.com"); err != nil || !listed {
		t.Fatalf("Listed = %v, %v", listed, err)
	}
	if listed, err := c.Listed("innocent.org"); err != nil || listed {
		t.Fatalf("Listed(unlisted) = %v, %v", listed, err)
	}

	got := scrapeCounters(t, "http://"+ms.Addr().String()+"/metrics")
	admitted := 0.0
	for k, v := range got {
		if strings.HasPrefix(k, "dnsbl_queue_admitted_total") {
			admitted += v
		}
	}
	if admitted != 2 {
		t.Errorf("queue admitted = %v, want 2 (scrape: %v)", admitted, got)
	}
}

// TestSetupWithoutMetrics pins the flag's default-off behavior.
func TestSetupWithoutMetrics(t *testing.T) {
	srv, addr, ms, err := setup(options{
		feedPath: writeTestFeed(t), zone: "dbl.example",
		listen: "127.0.0.1:0", ttl: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if ms != nil {
		t.Fatal("metrics server started without -metrics")
	}
	c := dnsbl.NewClient(addr.String(), "dbl.example", 1)
	c.Timeout = 3 * time.Second
	if listed, err := c.Listed("replicas.net"); err != nil || !listed {
		t.Fatalf("Listed = %v, %v", listed, err)
	}
}

// writeRawFeed writes a raw JSONL observation log and returns its path;
// the base name ("rawbl") becomes the feed name in TXT attributions.
func writeRawFeed(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rawbl.jsonl")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := feeds.NewRawWriter(out)
	for i, d := range []string{"rawspam.com", "rawscam.net"} {
		err := w.Write(feeds.RawRecord{
			Time:   simclock.PaperStart.Add(time.Duration(i) * time.Hour),
			Domain: d,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSetupPlaneServesTwoZones is the -serve flag's acceptance test:
// two zones — one aggregate TSV, one raw JSONL — load into the sharded
// plane and answer over UDP, each under its own suffix.
func TestSetupPlaneServesTwoZones(t *testing.T) {
	srv, addr, ms, stop, err := setupPlane(options{
		serves: []string{
			"dbl.example=" + writeTestFeed(t),
			"rawbl.example=" + writeRawFeed(t),
		},
		listen: "127.0.0.1:0", ttl: 300, shards: 4,
		negTTL: 30 * time.Second, negSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop() // no -sync entries: must be a safe no-op
	if ms != nil {
		t.Fatal("metrics server started without -metrics")
	}

	for _, tc := range []struct {
		zone, domain string
		listed       bool
	}{
		{"dbl.example", "cheappills.com", true},
		{"dbl.example", "rawspam.com", false}, // listed only in the other zone
		{"rawbl.example", "rawspam.com", true},
		{"rawbl.example", "rawscam.net", true},
		{"rawbl.example", "cheappills.com", false},
	} {
		c := dnsbl.NewClient(addr.String(), tc.zone, 1)
		c.Timeout = 3 * time.Second
		listed, err := c.Listed(domain.Name(tc.domain))
		if err != nil {
			t.Fatalf("%s in %s: %v", tc.domain, tc.zone, err)
		}
		if listed != tc.listed {
			t.Errorf("%s in %s: listed=%v, want %v", tc.domain, tc.zone, listed, tc.listed)
		}
	}
	if n, err := srv.Plane.Listed("dbl.example"); err != nil || n != 2 {
		t.Fatalf("dbl.example listed = %d, %v", n, err)
	}
	if n, err := srv.Plane.Listed("rawbl.example"); err != nil || n != 2 {
		t.Fatalf("rawbl.example listed = %d, %v", n, err)
	}
}

// TestSetupPlaneBadFlags pins -serve / -sync parse errors.
func TestSetupPlaneBadFlags(t *testing.T) {
	for _, o := range []options{
		{serves: []string{"noequals"}, listen: "127.0.0.1:0"},
		{serves: []string{"=path"}, listen: "127.0.0.1:0"},
		{serves: []string{"zone="}, listen: "127.0.0.1:0"},
		{serves: []string{"z=/nonexistent/feed.tsv"}, listen: "127.0.0.1:0"},
		{serves: []string{"z=" + os.DevNull}, listen: "127.0.0.1:0",
			tails: []string{"badsync"}},
	} {
		if _, _, _, _, err := setupPlane(o); err == nil {
			t.Errorf("setupPlane(%v): no error", o.serves)
		}
	}
}

// TestApplyZoneOverrides: the repeatable -zone-ttl / -zone-negttl /
// -zone-soa entries land on the right ZoneConfig, and malformed or
// unserved entries are rejected.
func TestApplyZoneOverrides(t *testing.T) {
	zones := []dnsblplane.ZoneConfig{{Suffix: "dbl.test"}, {Suffix: "uribl.test"}}
	o := options{
		zoneTTLs:    []string{"dbl.test=120"},
		zoneNegTTLs: []string{"uribl.test=90s"},
		zoneSOAs:    []string{"dbl.test=ns1.dbl.test,hostmaster.dbl.test,42"},
	}
	if err := applyZoneOverrides(zones, o); err != nil {
		t.Fatal(err)
	}
	if zones[0].TTL != 120 {
		t.Errorf("dbl.test TTL = %d, want 120", zones[0].TTL)
	}
	if zones[1].NegTTL != 90*time.Second {
		t.Errorf("uribl.test NegTTL = %v, want 90s", zones[1].NegTTL)
	}
	if zones[0].SOA == nil || zones[0].SOA.MName != "ns1.dbl.test" || zones[0].SOA.Serial != 42 {
		t.Errorf("dbl.test SOA = %+v, want ns1.dbl.test serial 42", zones[0].SOA)
	}
	if zones[1].SOA != nil || zones[1].TTL != 0 {
		t.Errorf("uribl.test picked up another zone's overrides: %+v", zones[1])
	}

	for _, bad := range []options{
		{zoneTTLs: []string{"nosuch.test=120"}},
		{zoneTTLs: []string{"dbl.test=notanumber"}},
		{zoneNegTTLs: []string{"dbl.test=-5s"}},
		{zoneSOAs: []string{"dbl.test=onlymname"}},
		{zoneSOAs: []string{"dbl.test=ns1,host,badserial"}},
	} {
		if err := applyZoneOverrides(zones, bad); err == nil {
			t.Errorf("applyZoneOverrides(%+v) accepted a bad entry", bad)
		}
	}
}
