// Command dnsblserve serves a feed file (written by cmd/feedgen, or
// converted from real blacklist data) as a DNSBL zone over DNS/UDP, the
// way dbl- and uribl-style blacklists are consumed by mail filters:
//
//	dnsblserve -feed feeds-out/uribl.tsv -zone uribl.example -listen 127.0.0.1:5353
//
// Query it with the dnsbl client, or with standard tools:
//
//	dig @127.0.0.1 -p 5353 somespamdomain.com.uribl.example A
//
// An A answer of 127.0.0.2 means listed; NXDOMAIN means clean.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/lifecycle"
)

func main() {
	feedPath := flag.String("feed", "", "feed TSV file to serve (required)")
	zone := flag.String("zone", "dnsbl.example", "zone suffix to answer under")
	listen := flag.String("listen", "127.0.0.1:5353", "UDP address to listen on")
	ttl := flag.Uint("ttl", 300, "TTL for positive answers, seconds")
	flag.Parse()
	if *feedPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*feedPath)
	if err != nil {
		fail(err)
	}
	feed, err := feeds.ReadTSV(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	srv := dnsbl.NewServer(*zone, dnsbl.FeedZone{Feed: feed})
	srv.TTL = uint32(*ttl)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving %s (%d domains) as zone %s on %s\n",
		feed.Name, feed.Unique(), *zone, addr)
	fmt.Printf("try: dig @%s somedomain.%s A\n", addr, *zone)

	// SIGTERM/SIGINT drain the server instead of cutting it off: the
	// query being answered completes, then the sockets close. The drain
	// deadline force-closes stragglers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := lifecycle.Run(ctx, srv, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "dnsblserve: shutdown: %v\n", err)
	}
	fmt.Printf("\n%d queries served, %d listed\n", srv.Queries(), srv.Hits())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dnsblserve: %v\n", err)
	os.Exit(1)
}
