// Command dnsblserve serves a feed file (written by cmd/feedgen, or
// converted from real blacklist data) as a DNSBL zone over DNS/UDP, the
// way dbl- and uribl-style blacklists are consumed by mail filters:
//
//	dnsblserve -feed feeds-out/uribl.tsv -zone uribl.example -listen 127.0.0.1:5353
//
// Query it with the dnsbl client, or with standard tools:
//
//	dig @127.0.0.1 -p 5353 somespamdomain.com.uribl.example A
//
// An A answer of 127.0.0.2 means listed; NXDOMAIN means clean.
//
// With -metrics ADDR the process also serves its observability
// surface — /metrics (Prometheus text), /debug/vars (expvar),
// /debug/pprof/ and /debug/trace — on a second HTTP listener.
//
// Overload protection is off by default and switched on with the
// -workers / -max-inflight / -rate family of flags: queries then pass
// an admission gate and a bounded CoDel-shedding queue, and excess
// load is answered with protocol-native REFUSED/SERVFAIL instead of
// growing an unbounded backlog. See MECHANISMS.md, "Overload and
// graceful degradation".
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/lifecycle"
	"tasterschoice/internal/obs"
	"tasterschoice/internal/overload"
)

// options carries everything setup needs; one struct instead of a
// parameter list that grows with every flag.
type options struct {
	feedPath    string
	zone        string
	listen      string
	ttl         uint32
	metricsAddr string

	// Overload protection (all zero: legacy unprotected serving).
	workers     int     // queued-worker pool size (0: synchronous loop)
	queueDepth  int     // bounded queue size (0: 16×workers)
	maxInflight int     // admission gate concurrency cap (0: unlimited)
	rate        float64 // admissions/sec per priority class (0: unlimited)
	burst       float64 // bucket burst (0: rate)
	fairBuckets int     // per-client fairness buckets (0: disabled)
	fairRate    float64 // per-bucket admissions/sec
	fairBurst   float64 // per-bucket burst
	seed        uint64  // fairness hash seed
}

// gateWanted reports whether any admission-gate flag was set.
func (o options) gateWanted() bool {
	return o.maxInflight > 0 || o.rate > 0 || o.fairBuckets > 0
}

// setup loads the feed and wires the DNS server plus, when
// o.metricsAddr is non-empty, an instrumented exposition endpoint. The
// server is listening (on possibly-":0"-resolved addr) when setup
// returns.
func setup(o options) (srv *dnsbl.Server, addr net.Addr, ms *obs.MetricsServer, err error) {
	f, err := os.Open(o.feedPath)
	if err != nil {
		return nil, nil, nil, err
	}
	feed, err := feeds.ReadTSV(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}

	srv = dnsbl.NewServer(o.zone, dnsbl.FeedZone{Feed: feed})
	srv.TTL = o.ttl
	var reg *obs.Registry
	if o.metricsAddr != "" {
		reg = obs.NewRegistry()
		srv.Metrics = dnsbl.NewServerMetrics(reg, o.zone)
		ms, err = obs.Serve(o.metricsAddr, reg, obs.NewTracer(0, nil))
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if o.gateWanted() {
		cfg := overload.GateConfig{
			MaxConcurrent: o.maxInflight,
			FairBuckets:   o.fairBuckets,
			FairRate:      o.fairRate,
			FairBurst:     o.fairBurst,
			Seed:          o.seed,
		}
		for p := range cfg.Rate {
			cfg.Rate[p], cfg.Burst[p] = o.rate, o.burst
		}
		cfg.Metrics = overload.NewGateMetrics(reg, "dnsbl")
		srv.Admission = overload.NewGate(cfg)
	}
	if o.workers > 0 {
		srv.Workers = o.workers
		srv.QueueDepth = o.queueDepth
		srv.QueueMetrics = overload.NewQueueMetrics(reg, "dnsbl")
	}
	addr, err = srv.Listen(o.listen)
	if err != nil {
		if ms != nil {
			ms.Close()
		}
		return nil, nil, nil, err
	}
	return srv, addr, ms, nil
}

func main() {
	feedPath := flag.String("feed", "", "feed TSV file to serve (required)")
	zone := flag.String("zone", "dnsbl.example", "zone suffix to answer under")
	listen := flag.String("listen", "127.0.0.1:5353", "UDP address to listen on")
	ttl := flag.Uint("ttl", 300, "TTL for positive answers, seconds")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address (empty: disabled)")
	workers := flag.Int("workers", 0, "queued-worker pool size; 0 keeps the synchronous serving loop")
	queueDepth := flag.Int("queue", 0, "bounded request queue depth (0: 16 per worker)")
	maxInflight := flag.Int("max-inflight", 0, "admission cap on concurrently served queries (0: unlimited)")
	rate := flag.Float64("rate", 0, "admissions per second per priority class (0: unlimited)")
	burst := flag.Float64("burst", 0, "admission bucket burst (0: same as -rate)")
	fairBuckets := flag.Int("fair-buckets", 0, "per-client fairness buckets (0: disabled)")
	fairRate := flag.Float64("fair-rate", 0, "admissions per second per fairness bucket")
	fairBurst := flag.Float64("fair-burst", 0, "fairness bucket burst (0: same as -fair-rate)")
	seed := flag.Uint64("overload-seed", 1, "seed for the fairness hash")
	flag.Parse()
	if *feedPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	srv, addr, ms, err := setup(options{
		feedPath:    *feedPath,
		zone:        *zone,
		listen:      *listen,
		ttl:         uint32(*ttl),
		metricsAddr: *metricsAddr,
		workers:     *workers,
		queueDepth:  *queueDepth,
		maxInflight: *maxInflight,
		rate:        *rate,
		burst:       *burst,
		fairBuckets: *fairBuckets,
		fairRate:    *fairRate,
		fairBurst:   *fairBurst,
		seed:        *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving zone %s on %s\n", *zone, addr)
	fmt.Printf("try: dig @%s somedomain.%s A\n", addr, *zone)
	if ms != nil {
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	// SIGTERM/SIGINT drain the server instead of cutting it off: the
	// query being answered completes, then the sockets close. The drain
	// deadline force-closes stragglers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := lifecycle.Run(ctx, srv, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "dnsblserve: shutdown: %v\n", err)
	}
	fmt.Printf("\n%d queries served, %d listed\n", srv.Queries(), srv.Hits())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dnsblserve: %v\n", err)
	os.Exit(1)
}
