// Command dnsblserve serves a feed file (written by cmd/feedgen, or
// converted from real blacklist data) as a DNSBL zone over DNS/UDP, the
// way dbl- and uribl-style blacklists are consumed by mail filters:
//
//	dnsblserve -feed feeds-out/uribl.tsv -zone uribl.example -listen 127.0.0.1:5353
//
// Query it with the dnsbl client, or with standard tools:
//
//	dig @127.0.0.1 -p 5353 somespamdomain.com.uribl.example A
//
// An A answer of 127.0.0.2 means listed; NXDOMAIN means clean.
//
// With -metrics ADDR the process also serves its observability
// surface — /metrics (Prometheus text), /debug/vars (expvar),
// /debug/pprof/ and /debug/trace — on a second HTTP listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/lifecycle"
	"tasterschoice/internal/obs"
)

// setup loads the feed and wires the DNS server plus, when metricsAddr
// is non-empty, an instrumented exposition endpoint. The server is
// listening (on possibly-":0"-resolved addr) when setup returns.
func setup(feedPath, zone, listen string, ttl uint32, metricsAddr string) (
	srv *dnsbl.Server, addr net.Addr, ms *obs.MetricsServer, err error) {
	f, err := os.Open(feedPath)
	if err != nil {
		return nil, nil, nil, err
	}
	feed, err := feeds.ReadTSV(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}

	srv = dnsbl.NewServer(zone, dnsbl.FeedZone{Feed: feed})
	srv.TTL = ttl
	if metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.Metrics = dnsbl.NewServerMetrics(reg, zone)
		ms, err = obs.Serve(metricsAddr, reg, obs.NewTracer(0, nil))
		if err != nil {
			return nil, nil, nil, err
		}
	}
	addr, err = srv.Listen(listen)
	if err != nil {
		if ms != nil {
			ms.Close()
		}
		return nil, nil, nil, err
	}
	return srv, addr, ms, nil
}

func main() {
	feedPath := flag.String("feed", "", "feed TSV file to serve (required)")
	zone := flag.String("zone", "dnsbl.example", "zone suffix to answer under")
	listen := flag.String("listen", "127.0.0.1:5353", "UDP address to listen on")
	ttl := flag.Uint("ttl", 300, "TTL for positive answers, seconds")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address (empty: disabled)")
	flag.Parse()
	if *feedPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	srv, addr, ms, err := setup(*feedPath, *zone, *listen, uint32(*ttl), *metricsAddr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving zone %s on %s\n", *zone, addr)
	fmt.Printf("try: dig @%s somedomain.%s A\n", addr, *zone)
	if ms != nil {
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	// SIGTERM/SIGINT drain the server instead of cutting it off: the
	// query being answered completes, then the sockets close. The drain
	// deadline force-closes stragglers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := lifecycle.Run(ctx, srv, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "dnsblserve: shutdown: %v\n", err)
	}
	fmt.Printf("\n%d queries served, %d listed\n", srv.Queries(), srv.Hits())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dnsblserve: %v\n", err)
	os.Exit(1)
}
