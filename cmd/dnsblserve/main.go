// Command dnsblserve serves blacklist feeds as DNSBL zones over
// DNS/UDP, the way dbl- and uribl-style blacklists are consumed by
// mail filters.
//
// Single-zone (legacy) mode serves one feed under one zone through the
// synchronous internal/dnsbl server:
//
//	dnsblserve -feed feeds-out/uribl.tsv -zone uribl.example -listen 127.0.0.1:5353
//
// Multi-zone plane mode serves any number of zones from the sharded
// internal/dnsblplane index — lock-free reads, RCU snapshot reloads,
// negative-answer caching, batched read/write loops:
//
//	dnsblserve -serve dbl.example=feeds-out/dbl.tsv \
//	           -serve uribl.example=feeds-out/uribl.tsv \
//	           -shards 4 -listen 127.0.0.1:5353
//
// The feed name attributed in TXT answers is the file's base name
// (".tsv" feeds load as aggregate TSV, anything else as raw JSONL
// observation logs). With -sync-addr the plane also tails feedsync
// deltas live: -sync FEED=ZONE subscribes to FEED on the feedsync
// server and hot-reloads its records into ZONE while queries keep
// flowing.
//
// Query either mode with the dnsbl client, or with standard tools:
//
//	dig @127.0.0.1 -p 5353 somespamdomain.com.uribl.example A
//
// An A answer of 127.0.0.2 means listed; NXDOMAIN means clean.
//
// With -metrics ADDR the process also serves its observability
// surface — /metrics (Prometheus text), /debug/vars (expvar),
// /debug/pprof/ and /debug/trace — on a second HTTP listener.
//
// Overload protection is off by default and switched on with the
// -workers / -max-inflight / -rate family of flags: queries then pass
// an admission gate (and, in legacy mode, a bounded CoDel-shedding
// queue), and excess load is answered with protocol-native
// REFUSED/SERVFAIL instead of growing an unbounded backlog. See
// MECHANISMS.md, "Overload and graceful degradation" and "Sharded
// query plane".
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/dnsblplane"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/feedsync"
	"tasterschoice/internal/lifecycle"
	"tasterschoice/internal/obs"
	"tasterschoice/internal/overload"
)

// multiFlag collects repeatable -serve / -sync flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// options carries everything setup needs; one struct instead of a
// parameter list that grows with every flag.
type options struct {
	feedPath    string
	zone        string
	listen      string
	ttl         uint32
	metricsAddr string

	// Plane mode (any -serve entry switches it on).
	serves      []string // "suffix=feedfile" entries
	shards      int
	negTTL      time.Duration
	negSize     int
	readers     int
	batch       int
	syncAddr    string   // feedsync server for hot reload
	tails       []string // "feed=zone" subscriptions
	zoneTTLs    []string // "suffix=seconds" per-zone positive-TTL overrides
	zoneNegTTLs []string // "suffix=duration" per-zone negative-TTL overrides
	zoneSOAs    []string // "suffix=mname,rname[,serial]" per-zone SOA records

	// Overload protection (all zero: unprotected serving).
	workers     int     // worker pool size (0: legacy synchronous loop)
	queueDepth  int     // bounded queue size (0: 16×workers)
	maxInflight int     // admission gate concurrency cap (0: unlimited)
	rate        float64 // admissions/sec per priority class (0: unlimited)
	burst       float64 // bucket burst (0: rate)
	fairBuckets int     // per-client fairness buckets (0: disabled)
	fairRate    float64 // per-bucket admissions/sec
	fairBurst   float64 // per-bucket burst
	seed        uint64  // fairness hash seed
}

// gateWanted reports whether any admission-gate flag was set.
func (o options) gateWanted() bool {
	return o.maxInflight > 0 || o.rate > 0 || o.fairBuckets > 0
}

// gate builds the admission gate from the flag family.
func (o options) gate(reg *obs.Registry) *overload.Gate {
	cfg := overload.GateConfig{
		MaxConcurrent: o.maxInflight,
		FairBuckets:   o.fairBuckets,
		FairRate:      o.fairRate,
		FairBurst:     o.fairBurst,
		Seed:          o.seed,
	}
	for p := range cfg.Rate {
		cfg.Rate[p], cfg.Burst[p] = o.rate, o.burst
	}
	cfg.Metrics = overload.NewGateMetrics(reg, "dnsbl")
	return overload.NewGate(cfg)
}

// setup loads the feed and wires the legacy single-zone DNS server
// plus, when o.metricsAddr is non-empty, an instrumented exposition
// endpoint. The server is listening (on possibly-":0"-resolved addr)
// when setup returns.
func setup(o options) (srv *dnsbl.Server, addr net.Addr, ms *obs.MetricsServer, err error) {
	f, err := os.Open(o.feedPath)
	if err != nil {
		return nil, nil, nil, err
	}
	feed, err := feeds.ReadTSV(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}

	srv = dnsbl.NewServer(o.zone, dnsbl.FeedZone{Feed: feed})
	srv.TTL = o.ttl
	var reg *obs.Registry
	if o.metricsAddr != "" {
		reg = obs.NewRegistry()
		srv.Metrics = dnsbl.NewServerMetrics(reg, o.zone)
		ms, err = obs.Serve(o.metricsAddr, reg, obs.NewTracer(0, nil))
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if o.gateWanted() {
		srv.Admission = o.gate(reg)
	}
	if o.workers > 0 {
		srv.Workers = o.workers
		srv.QueueDepth = o.queueDepth
		srv.QueueMetrics = overload.NewQueueMetrics(reg, "dnsbl")
	}
	addr, err = srv.Listen(o.listen)
	if err != nil {
		if ms != nil {
			ms.Close()
		}
		return nil, nil, nil, err
	}
	return srv, addr, ms, nil
}

// loadFeedFile reads one feed file — aggregate TSV for .tsv, raw JSONL
// observation log otherwise — naming the feed after the file.
func loadFeedFile(path string) (*feeds.Feed, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		feed, err := feeds.ReadTSV(f)
		if err != nil {
			return nil, err
		}
		if feed.Name == "" {
			feed.Name = name
		}
		return feed, nil
	}
	feed := feeds.New(name, feeds.KindBlacklist, false, false)
	if _, err := feed.ReadRaw(f); err != nil {
		return nil, err
	}
	return feed, nil
}

// setupPlane wires the multi-zone sharded plane: parses the -serve
// entries, bulk-loads each feed into its zone, starts the batched UDP
// server and, when o.syncAddr is set, one hot-reload tailer per -sync
// entry. The returned stop function halts the tailers (idempotent).
func setupPlane(o options) (srv *dnsblplane.Server, addr net.Addr, ms *obs.MetricsServer, stop func(), err error) {
	type load struct {
		zone string
		path string
	}
	var loads []load
	zoneSet := map[string]bool{}
	var zones []dnsblplane.ZoneConfig
	for _, s := range o.serves {
		suffix, path, ok := strings.Cut(s, "=")
		if !ok || suffix == "" || path == "" {
			return nil, nil, nil, nil, fmt.Errorf("bad -serve %q (want suffix=feedfile)", s)
		}
		if !zoneSet[suffix] {
			zoneSet[suffix] = true
			zones = append(zones, dnsblplane.ZoneConfig{Suffix: suffix})
		}
		loads = append(loads, load{zone: suffix, path: path})
	}
	for _, tl := range o.tails {
		_, zone, ok := strings.Cut(tl, "=")
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("bad -sync %q (want feed=zone)", tl)
		}
		if !zoneSet[zone] {
			zoneSet[zone] = true
			zones = append(zones, dnsblplane.ZoneConfig{Suffix: zone})
		}
	}

	if err := applyZoneOverrides(zones, o); err != nil {
		return nil, nil, nil, nil, err
	}

	plane, err := dnsblplane.New(dnsblplane.Config{
		Zones:        zones,
		Shards:       o.shards,
		TTL:          o.ttl,
		NegTTL:       o.negTTL,
		NegCacheSize: o.negSize,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// The plane's counters are always wired (the exit summary reads
	// them); the HTTP exposition endpoint only with -metrics.
	reg := obs.NewRegistry()
	plane.Metrics = dnsblplane.WireMetrics(reg)
	if o.metricsAddr != "" {
		ms, err = obs.Serve(o.metricsAddr, reg, obs.NewTracer(0, nil))
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	for _, l := range loads {
		feed, err := loadFeedFile(l.path)
		if err != nil {
			if ms != nil {
				ms.Close()
			}
			return nil, nil, nil, nil, err
		}
		n, err := plane.LoadFeed(l.zone, feed)
		if err != nil {
			if ms != nil {
				ms.Close()
			}
			return nil, nil, nil, nil, err
		}
		fmt.Printf("zone %s: loaded %d domains from %s\n", l.zone, n, l.path)
	}

	srv = &dnsblplane.Server{
		Plane:      plane,
		Readers:    o.readers,
		Workers:    o.workers,
		Batch:      o.batch,
		QueueDepth: o.queueDepth,
	}
	if o.gateWanted() {
		srv.Admission = o.gate(reg)
	}
	addr, err = srv.Listen(o.listen)
	if err != nil {
		if ms != nil {
			ms.Close()
		}
		return nil, nil, nil, nil, err
	}

	// Hot reload: one tailer per -sync entry, stopped via the returned
	// cancel. Tailers reconnect-from-offset on connection loss.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	tails := 0
	if o.syncAddr != "" {
		for _, tl := range o.tails {
			feedName, zone, _ := strings.Cut(tl, "=")
			tails++
			go func(feedName, zone string) {
				defer func() { done <- struct{}{} }()
				rl := &dnsblplane.Reloader{
					Client: feedsync.NewClient(o.syncAddr),
					Plane:  plane,
					Zone:   zone,
					Feed:   feedName,
				}
				var off int64
				for ctx.Err() == nil {
					var err error
					off, err = rl.Run(ctx, off)
					if err != nil && ctx.Err() == nil {
						fmt.Fprintf(os.Stderr, "dnsblserve: sync %s: %v\n", feedName, err)
					}
				}
			}(feedName, zone)
		}
	}
	stop = func() {
		cancel()
		for i := 0; i < tails; i++ {
			<-done
		}
	}
	return srv, addr, ms, stop, nil
}

// applyZoneOverrides distributes the repeatable -zone-ttl /
// -zone-negttl / -zone-soa flag entries onto their ZoneConfigs. Every
// entry must name a zone that some -serve or -sync entry created.
func applyZoneOverrides(zones []dnsblplane.ZoneConfig, o options) error {
	find := func(suffix string) *dnsblplane.ZoneConfig {
		for i := range zones {
			if zones[i].Suffix == suffix {
				return &zones[i]
			}
		}
		return nil
	}
	for _, e := range o.zoneTTLs {
		suffix, val, ok := strings.Cut(e, "=")
		if !ok {
			return fmt.Errorf("bad -zone-ttl %q (want suffix=seconds)", e)
		}
		zc := find(suffix)
		if zc == nil {
			return fmt.Errorf("-zone-ttl %q: zone not served", suffix)
		}
		secs, err := strconv.ParseUint(val, 10, 32)
		if err != nil || secs == 0 {
			return fmt.Errorf("bad -zone-ttl %q: want positive seconds", e)
		}
		zc.TTL = uint32(secs)
	}
	for _, e := range o.zoneNegTTLs {
		suffix, val, ok := strings.Cut(e, "=")
		if !ok {
			return fmt.Errorf("bad -zone-negttl %q (want suffix=duration)", e)
		}
		zc := find(suffix)
		if zc == nil {
			return fmt.Errorf("-zone-negttl %q: zone not served", suffix)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad -zone-negttl %q: want a positive duration", e)
		}
		zc.NegTTL = d
	}
	for _, e := range o.zoneSOAs {
		suffix, val, ok := strings.Cut(e, "=")
		if !ok {
			return fmt.Errorf("bad -zone-soa %q (want suffix=mname,rname[,serial])", e)
		}
		zc := find(suffix)
		if zc == nil {
			return fmt.Errorf("-zone-soa %q: zone not served", suffix)
		}
		parts := strings.Split(val, ",")
		if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
			return fmt.Errorf("bad -zone-soa %q (want suffix=mname,rname[,serial])", e)
		}
		soa := &dnsblplane.SOAConfig{MName: parts[0], RName: parts[1]}
		if len(parts) >= 3 {
			serial, err := strconv.ParseUint(parts[2], 10, 32)
			if err != nil {
				return fmt.Errorf("bad -zone-soa serial %q", parts[2])
			}
			soa.Serial = uint32(serial)
		}
		zc.SOA = soa
	}
	return nil
}

func main() {
	feedPath := flag.String("feed", "", "legacy mode: feed TSV file to serve under -zone")
	zone := flag.String("zone", "dnsbl.example", "legacy mode: zone suffix to answer under")
	var serves, tails, zoneTTLs, zoneNegTTLs, zoneSOAs multiFlag
	flag.Var(&serves, "serve", "plane mode: SUFFIX=FEEDFILE zone to serve (repeatable)")
	flag.Var(&tails, "sync", "plane mode: FEED=ZONE feedsync subscription to hot-reload (repeatable)")
	flag.Var(&zoneTTLs, "zone-ttl", "plane mode: SUFFIX=SECONDS positive-answer TTL override for one zone (repeatable)")
	flag.Var(&zoneNegTTLs, "zone-negttl", "plane mode: SUFFIX=DURATION negative-answer TTL override for one zone (repeatable)")
	flag.Var(&zoneSOAs, "zone-soa", "plane mode: SUFFIX=MNAME,RNAME[,SERIAL] apex SOA for one zone; switches on RFC 2308 authority sections (repeatable)")
	syncAddr := flag.String("sync-addr", "", "feedsync server address for -sync subscriptions")
	shards := flag.Int("shards", 4, "plane mode: shards per zone (rounded up to a power of two)")
	negTTL := flag.Duration("neg-ttl", 30*time.Second, "plane mode: negative-answer cache TTL")
	negSize := flag.Int("neg-size", 512, "plane mode: negative-cache entries per shard (<0 disables)")
	readers := flag.Int("readers", 1, "plane mode: socket reader goroutines")
	batch := flag.Int("batch", 32, "plane mode: max datagrams per worker wakeup")
	listen := flag.String("listen", "127.0.0.1:5353", "UDP address to listen on")
	ttl := flag.Uint("ttl", 300, "TTL for positive answers, seconds")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address (empty: disabled)")
	workers := flag.Int("workers", 0, "worker pool size (legacy mode 0: synchronous loop; plane mode 0: 4)")
	queueDepth := flag.Int("queue", 0, "bounded request queue depth (0: 16 per worker)")
	maxInflight := flag.Int("max-inflight", 0, "admission cap on concurrently served queries (0: unlimited)")
	rate := flag.Float64("rate", 0, "admissions per second per priority class (0: unlimited)")
	burst := flag.Float64("burst", 0, "admission bucket burst (0: same as -rate)")
	fairBuckets := flag.Int("fair-buckets", 0, "per-client fairness buckets (0: disabled)")
	fairRate := flag.Float64("fair-rate", 0, "admissions per second per fairness bucket")
	fairBurst := flag.Float64("fair-burst", 0, "fairness bucket burst (0: same as -fair-rate)")
	seed := flag.Uint64("overload-seed", 1, "seed for the fairness hash")
	flag.Parse()

	o := options{
		feedPath:    *feedPath,
		zone:        *zone,
		listen:      *listen,
		ttl:         uint32(*ttl),
		metricsAddr: *metricsAddr,
		serves:      serves,
		tails:       tails,
		zoneTTLs:    zoneTTLs,
		zoneNegTTLs: zoneNegTTLs,
		zoneSOAs:    zoneSOAs,
		syncAddr:    *syncAddr,
		shards:      *shards,
		negTTL:      *negTTL,
		negSize:     *negSize,
		readers:     *readers,
		batch:       *batch,
		workers:     *workers,
		queueDepth:  *queueDepth,
		maxInflight: *maxInflight,
		rate:        *rate,
		burst:       *burst,
		fairBuckets: *fairBuckets,
		fairRate:    *fairRate,
		fairBurst:   *fairBurst,
		seed:        *seed,
	}
	if len(o.serves) == 0 && o.feedPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// SIGTERM/SIGINT drain the server instead of cutting it off: the
	// query being answered completes, then the sockets close. The drain
	// deadline force-closes stragglers.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if len(o.serves) > 0 {
		srv, addr, ms, stopTails, err := setupPlane(o)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving %d zone(s) on %s\n", len(srv.Plane.Zones()), addr)
		for _, z := range srv.Plane.Zones() {
			fmt.Printf("try: dig @%s somedomain.%s A\n", addr, z)
		}
		if ms != nil {
			defer ms.Close()
			fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
		}
		err = lifecycle.Run(ctx, srv, 10*time.Second)
		stopTails()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsblserve: shutdown: %v\n", err)
		}
		m := srv.Plane.Metrics
		fmt.Printf("\n%d queries served, %d listed, %d negative-cache hits, %d shed\n",
			m.Queries.Value(), m.Hits.Value(), m.NegHits.Value(), m.Shed.Value())
		return
	}

	srv, addr, ms, err := setup(o)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving zone %s on %s\n", o.zone, addr)
	fmt.Printf("try: dig @%s somedomain.%s A\n", addr, o.zone)
	if ms != nil {
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}
	if err := lifecycle.Run(ctx, srv, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "dnsblserve: shutdown: %v\n", err)
	}
	fmt.Printf("\n%d queries served, %d listed\n", srv.Queries(), srv.Hits())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dnsblserve: %v\n", err)
	os.Exit(1)
}
