// Command feedstats analyzes serialized feed files (written by
// cmd/feedgen, or hand-converted real feed data) without needing the
// generating world: it reports per-feed summaries, pairwise domain
// intersections, volume-distribution comparisons for feeds with volume
// information, and first-appearance latency against the aggregate
// baseline.
//
// Usage:
//
//	feedstats FILE.tsv...
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tasterschoice/internal/domain"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/report"
	"tasterschoice/internal/stats"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: feedstats FILE.tsv...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var loaded []*feeds.Feed
	for _, path := range flag.Args() {
		f, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "feedstats: %v\n", err)
			os.Exit(1)
		}
		loaded = append(loaded, f)
	}

	printSummary(loaded)
	printIntersections(loaded)
	printProportionality(loaded)
	printTiming(loaded)
}

func load(path string) (*feeds.Feed, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return feeds.ReadTSV(file)
}

func printSummary(fs []*feeds.Feed) {
	rows := make([][]string, len(fs))
	for i, f := range fs {
		rows[i] = []string{
			f.Name, f.Kind.String(),
			report.Comma(f.Samples()), report.Comma(int64(f.Unique())),
			fmt.Sprintf("%t", f.HasVolume),
		}
	}
	fmt.Println("== Feed summary ==")
	fmt.Println(report.Table([]string{"Feed", "Type", "Samples", "Unique", "Volume?"}, rows))
}

func printIntersections(fs []*feeds.Feed) {
	headers := []string{""}
	for _, f := range fs {
		headers = append(headers, f.Name)
	}
	rows := make([][]string, len(fs))
	for i, a := range fs {
		row := []string{a.Name}
		aset := a.DomainSet()
		for _, b := range fs {
			n := 0
			for d := range b.DomainSet() {
				if aset[d] {
					n++
				}
			}
			row = append(row, fmt.Sprintf("%s(%s)",
				report.Percent(stats.Fraction(n, b.Unique())), report.Count(n)))
		}
		rows[i] = row
	}
	fmt.Println("== Pairwise domain intersection (row ∩ col as % of col) ==")
	fmt.Println(report.Table(headers, rows))
}

func printProportionality(fs []*feeds.Feed) {
	var vols []*feeds.Feed
	for _, f := range fs {
		if f.HasVolume {
			vols = append(vols, f)
		}
	}
	if len(vols) < 2 {
		return
	}
	dists := make([]stats.Dist, len(vols))
	for i, f := range vols {
		dists[i] = stats.NewDistFromCounts(f.Counts())
	}
	headers := []string{""}
	for _, f := range vols {
		headers = append(headers, f.Name)
	}
	vd := make([][]string, len(vols))
	kt := make([][]string, len(vols))
	for i := range vols {
		vd[i] = []string{vols[i].Name}
		kt[i] = []string{vols[i].Name}
		for j := range vols {
			vd[i] = append(vd[i], fmt.Sprintf("%.2f", stats.VariationDistance(dists[i], dists[j])))
			if tau, _, ok := stats.KendallTauB(dists[i], dists[j]); ok {
				kt[i] = append(kt[i], fmt.Sprintf("%.2f", tau))
			} else {
				kt[i] = append(kt[i], "-")
			}
		}
	}
	fmt.Println("== Pairwise variation distance (volume feeds) ==")
	fmt.Println(report.Table(headers, vd))
	fmt.Println("== Pairwise Kendall tau-b (volume feeds) ==")
	fmt.Println(report.Table(headers, kt))
}

func printTiming(fs []*feeds.Feed) {
	// Baseline first appearance: earliest across all feeds.
	first := make(map[domain.Name]time.Time)
	for _, f := range fs {
		f.Each(func(d domain.Name, s feeds.DomainStat) {
			if t, ok := first[d]; !ok || s.First.Before(t) {
				first[d] = s.First
			}
		})
	}
	rows := make([][]string, 0, len(fs))
	for _, f := range fs {
		var deltas []float64
		f.Each(func(d domain.Name, s feeds.DomainStat) {
			deltas = append(deltas, s.First.Sub(first[d]).Hours())
		})
		sort.Float64s(deltas)
		sum := stats.Summarize(deltas)
		rows = append(rows, []string{
			f.Name,
			fmt.Sprintf("%d", sum.N),
			fmt.Sprintf("%.1fh", sum.Median),
			fmt.Sprintf("%.1fh", sum.P75),
			fmt.Sprintf("%.1fh", sum.P95),
		})
	}
	fmt.Println("== First appearance after aggregate baseline ==")
	fmt.Println(report.Table([]string{"Feed", "N", "median", "p75", "p95"}, rows))
}
