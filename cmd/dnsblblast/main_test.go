package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"tasterschoice/internal/domain"
)

// TestWriteFeedRoundTrip: -mkfeed emits a raw JSONL feed that
// loadFeedFile reads back — the fixture contract between dnsblblast,
// dnsblserve and the CI load-smoke job.
func TestWriteFeedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dbl.jsonl")
	if err := writeFeed(path, 42, 50); err != nil {
		t.Fatal(err)
	}
	feed, err := loadFeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if feed.Name != "dbl" {
		t.Fatalf("feed name = %q, want base name %q", feed.Name, "dbl")
	}
	if got := feed.Unique(); got != 50 {
		t.Fatalf("unique domains = %d, want 50", got)
	}
	listed, weights := workload(feed)
	if len(listed) != 50 || len(weights) != 50 {
		t.Fatalf("workload: %d domains, %d weights", len(listed), len(weights))
	}
	for i, w := range weights {
		if w <= 0 {
			t.Fatalf("weight[%d] (%s) = %v", i, listed[i], w)
		}
	}

	// The oracle must agree with the file: every listed domain resolves
	// with its recorded first-seen time and the feed's name as reason.
	oracle := feedOracle(feed)
	for _, d := range listed {
		ok, first, reason := oracle("dbl.test", d)
		if !ok || first.IsZero() || reason != "dbl" {
			t.Fatalf("oracle(%s) = %v, %v, %q", d, ok, first, reason)
		}
		s, _ := feed.Stat(domain.Name(d))
		if !first.Equal(s.First) {
			t.Fatalf("oracle first %v != feed first %v", first, s.First)
		}
	}
	if ok, _, _ := oracle("dbl.test", "never-listed.example"); ok {
		t.Fatal("oracle lists a domain the feed never saw")
	}
}

// TestWriteFeedDeterministic: same world seed, same fixture bytes.
func TestWriteFeedDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	if err := writeFeed(a, 7, 20); err != nil {
		t.Fatal(err)
	}
	if err := writeFeed(b, 7, 20); err != nil {
		t.Fatal(err)
	}
	fa, err := loadFeedFile(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := loadFeedFile(b)
	if err != nil {
		t.Fatal(err)
	}
	la, wa := workload(fa)
	lb, wb := workload(fb)
	if !reflect.DeepEqual(la, lb) || !reflect.DeepEqual(wa, wb) {
		t.Fatal("same seed produced different workloads")
	}
}

// TestJunkNames: deterministic per seed, never colliding with the
// loud-campaign namespace (junk names carry their own prefix).
func TestJunkNames(t *testing.T) {
	a := junkNames(1, 64)
	b := junkNames(1, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("junkNames not deterministic")
	}
	c := junkNames(2, 64)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical junk")
	}
	for _, n := range a {
		if len(n) == 0 || n[:5] != "junk-" {
			t.Fatalf("junk name %q missing its namespace prefix", n)
		}
	}
}

// TestLoadFeedFileErrors covers the failure paths the CLI reports.
func TestLoadFeedFileErrors(t *testing.T) {
	if _, err := loadFeedFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file: want error")
	}
}
