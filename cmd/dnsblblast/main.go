// Command dnsblblast load-tests a DNSBL server the way the global
// resolver population does: many concurrent clients, a Zipf-skewed
// query mix dominated by a handful of loud-campaign domains, junk
// misses in between, and every answer checked against the oracle.
//
// Generate a deterministic workload (feed file + query skew) from the
// simulated spam ecosystem, serve it, then blast it:
//
//	dnsblblast -mkfeed /tmp/dbl.jsonl -world-seed 42 -top 2000
//	dnsblserve -serve dbl.test=/tmp/dbl.jsonl -listen 127.0.0.1:5353 &
//	dnsblblast -addr 127.0.0.1:5353 -zone dbl.test -feed /tmp/dbl.jsonl \
//	           -duration 10s -clients 8 -qps 2000
//
// The run reports sent/received counts, any incorrect answers, and
// exact p50/p99/p999 round-trip latencies:
//
//	blast: sent=20000 recv=20000 timeouts=0 shed=0 incorrect=0 qps=2000 p50=83µs p99=412µs p999=1.2ms
//
// Exit status is nonzero when any answer contradicted the oracle, or
// when -max-p99 / -min-qps floors are violated — which is exactly what
// the CI load-smoke job keys off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tasterschoice/internal/dnsblplane"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/randutil"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dnsblblast: %v\n", err)
	os.Exit(1)
}

// multiFlag collects repeatable -zone flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	addr := flag.String("addr", "", "DNSBL server UDP address to blast")
	var zones multiFlag
	flag.Var(&zones, "zone", "zone suffix to query (repeatable; also accepts comma lists)")
	feedPath := flag.String("feed", "", "feed file the server loaded; doubles as oracle and query mix")
	duration := flag.Duration("duration", 10*time.Second, "how long to blast")
	clients := flag.Int("clients", 8, "concurrent resolver clients")
	qps := flag.Float64("qps", 0, "aggregate query-rate bound (0: unbounded)")
	missFrac := flag.Float64("miss", 0.4, "fraction of queries for unlisted junk names")
	txtFrac := flag.Float64("txt", 0.1, "fraction of TXT queries")
	seed := flag.Uint64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 2*time.Second, "per-query timeout")
	maxP99 := flag.Duration("max-p99", 0, "fail when p99 latency exceeds this (0: no floor)")
	minQPS := flag.Float64("min-qps", 0, "fail when achieved QPS falls below this (0: no floor)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	noVerify := flag.Bool("no-verify", false, "skip oracle verification (pure throughput)")

	mkfeed := flag.String("mkfeed", "", "write a loud-campaign feed file here and exit (no blasting)")
	worldSeed := flag.Uint64("world-seed", 42, "ecosystem seed for -mkfeed")
	top := flag.Int("top", 2000, "domains to keep from the loud-campaign skew for -mkfeed")
	flag.Parse()

	if *mkfeed != "" {
		if err := writeFeed(*mkfeed, *worldSeed, *top); err != nil {
			fail(err)
		}
		return
	}
	if *addr == "" || len(zones) == 0 || *feedPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var zoneList []string
	for _, z := range zones {
		for _, part := range strings.Split(z, ",") {
			if part != "" {
				zoneList = append(zoneList, part)
			}
		}
	}

	feed, err := loadFeedFile(*feedPath)
	if err != nil {
		fail(err)
	}
	listed, weights := workload(feed)
	b := &dnsblplane.Blaster{
		Addr:     *addr,
		Zones:    zoneList,
		Listed:   listed,
		Weights:  weights,
		Unlisted: junkNames(*seed, 1024),
		MissFrac: *missFrac,
		TXTFrac:  *txtFrac,
		Clients:  *clients,
		QPS:      *qps,
		Timeout:  *timeout,
		Seed:     *seed,
	}
	if !*noVerify {
		b.Oracle = feedOracle(feed)
	}
	rep, err := b.Run(context.Background(), *duration)
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck
	} else {
		fmt.Println(rep)
		for _, m := range rep.Mismatches {
			fmt.Printf("  mismatch: %s\n", m)
		}
	}
	failures := 0
	if rep.Incorrect > 0 {
		fmt.Fprintf(os.Stderr, "dnsblblast: %d incorrect answers\n", rep.Incorrect)
		failures++
	}
	if *maxP99 > 0 && rep.P99 > *maxP99 {
		fmt.Fprintf(os.Stderr, "dnsblblast: p99 %s above floor %s\n", rep.P99, *maxP99)
		failures++
	}
	if *minQPS > 0 && rep.QPS < *minQPS {
		fmt.Fprintf(os.Stderr, "dnsblblast: qps %.0f below floor %.0f\n", rep.QPS, *minQPS)
		failures++
	}
	if rep.Received == 0 {
		fmt.Fprintf(os.Stderr, "dnsblblast: no answers received\n")
		failures++
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeFeed generates the ecosystem, takes the top-N loud-campaign
// domains by skew weight, and writes them as a raw JSONL feed file —
// the shared fixture dnsblserve loads and dnsblblast verifies against.
func writeFeed(path string, seed uint64, top int) error {
	world, err := ecosystem.Generate(ecosystem.DefaultConfig(seed))
	if err != nil {
		return err
	}
	skew := world.LoudCampaignSkew()
	if top > 0 && len(skew) > top {
		skew = skew[:top]
	}
	if len(skew) == 0 {
		return fmt.Errorf("world seed %d produced no loud-campaign domains", seed)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := feeds.NewRawWriter(f)
	for i, dw := range skew {
		// Deterministic first-seen times: campaign order over one day.
		t := time.Unix(1217548800+int64(i), 0).UTC() // 2008-08-01, paper era
		if err := w.Write(feeds.RawRecord{Time: t, Domain: string(dw.Name)}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d loud-campaign domains to %s\n", len(skew), path)
	return nil
}

// loadFeedFile reads the feed file the server was pointed at, naming
// the feed after the file the way dnsblserve does (the TXT oracle
// depends on the names matching).
func loadFeedFile(path string) (*feeds.Feed, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		feed, err := feeds.ReadTSV(f)
		if err != nil {
			return nil, err
		}
		if feed.Name == "" {
			feed.Name = name
		}
		return feed, nil
	}
	feed := feeds.New(name, feeds.KindBlacklist, false, false)
	if _, err := feed.ReadRaw(f); err != nil {
		return nil, err
	}
	return feed, nil
}

// workload extracts the listed-domain mix from the feed: domains in
// descending observation-count order with their counts as weights
// (count-weighted picks approximate the loud-campaign skew the feed
// was built from).
func workload(feed *feeds.Feed) (listed []string, weights []float64) {
	feed.Each(func(d domain.Name, s feeds.DomainStat) {
		listed = append(listed, string(d))
		weights = append(weights, float64(s.Count))
	})
	return listed, weights
}

// feedOracle adapts the loaded feed into the blaster's oracle.
func feedOracle(feed *feeds.Feed) func(zone, name string) (bool, time.Time, string) {
	return func(zone, name string) (bool, time.Time, string) {
		s, ok := feed.Stat(domain.Name(name))
		if !ok {
			return false, time.Time{}, ""
		}
		return true, s.First, feed.Name
	}
}

// junkNames builds deterministic never-listed query names.
func junkNames(seed uint64, n int) []string {
	rng := randutil.NewNamed(seed, "blast-junk")
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("junk-%08x.example", rng.Uint64()&0xffffffff)
	}
	return out
}
