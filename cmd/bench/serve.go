package main

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/dnsblplane"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/simclock"
)

// blastDuration is how long each end-to-end UDP blast runs. Long
// enough to amortize warmup, short enough to keep a full bench run
// tolerable (two blasts: plane and legacy reference).
const blastDuration = 2 * time.Second

// serveFeedDomains is the listing universe the serve benchmarks query.
const serveFeedDomains = 64

// serveFeed builds the deterministic listing set both servers load.
func serveFeed(name string) *feeds.Feed {
	f := feeds.New(name, feeds.KindBlacklist, false, false)
	for i := 0; i < serveFeedDomains; i++ {
		f.ObserveOnce(simclock.PaperStart.Add(time.Duration(i)*time.Minute),
			serveDomain(i))
	}
	return f
}

func serveDomain(i int) domain.Name {
	return domain.Name(fmt.Sprintf("spam%03d.example", i))
}

// serveQueries packs a mixed workload — listed A, listed TXT, misses —
// through the legacy codec, so both handling paths answer identical
// wire bytes.
func serveQueries() [][]byte {
	var qs [][]byte
	for i := 0; i < serveFeedDomains; i++ {
		for _, q := range []dnsbl.Question{
			{Name: fmt.Sprintf("spam%03d.example.dbl.bench", i), Type: dnsbl.TypeA, Class: dnsbl.ClassIN},
			{Name: fmt.Sprintf("spam%03d.example.dbl.bench", i), Type: dnsbl.TypeTXT, Class: dnsbl.ClassIN},
			{Name: fmt.Sprintf("miss%03d.example.dbl.bench", i), Type: dnsbl.TypeA, Class: dnsbl.ClassIN},
		} {
			m := &dnsbl.Message{
				Header:    dnsbl.Header{ID: uint16(i), RecursionDesired: true, QDCount: 1},
				Questions: []dnsbl.Question{q},
			}
			buf, err := m.Pack()
			if err != nil {
				fatalf("pack bench query: %v", err)
			}
			qs = append(qs, buf)
		}
	}
	return qs
}

// measureServe appends the DNSBL serving-plane rows to the report:
//
//   - dnsbl_handle: the plane's in-process fast path (Responder over a
//     warmed negative cache) vs the legacy codec-per-query Handle —
//     the committed ≥6x speedup story, hardware-independent.
//   - dnsbl_serve_qps: end-to-end UDP throughput of a 2-zone/4-shard
//     plane server under the blaster, vs the legacy single-zone server
//     as the serial reference. ns_per_op is 1e9/QPS so the generic
//     ns/op machinery and diff tables apply unchanged.
//   - dnsbl_serve_p99: the plane blast's p99 round-trip in ns, raw.
//
// The two UDP rows carry MinCPU=4: below four cores the readers,
// workers and blaster clients all contend for the same core and the
// numbers say nothing about the plane, so -check downgrades their
// regressions to warnings.
func measureServe(rep *Report) {
	feed := serveFeed("dbl")
	qs := serveQueries()

	// In-process handling: plane fast path vs legacy codec.
	fmt.Fprintln(os.Stderr, "bench dnsbl_handle...")
	plane, err := dnsblplane.New(dnsblplane.Config{
		Zones:  []dnsblplane.ZoneConfig{{Suffix: "dbl.bench"}},
		Shards: 4,
	})
	if err != nil {
		fatalf("bench plane: %v", err)
	}
	if _, err := plane.LoadFeed("dbl.bench", feed); err != nil {
		fatalf("bench plane load: %v", err)
	}
	resp := dnsblplane.NewResponder(plane)
	out := make([]byte, 0, 512)
	for _, q := range qs { // warm the negative cache
		out = resp.Respond(out[:0], q)
	}
	pr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = resp.Respond(out[:0], qs[i%len(qs)])
		}
	})
	legacy := dnsbl.NewServer("dbl.bench", dnsbl.FeedZone{Feed: feed})
	sr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			legacy.Handle(qs[i%len(qs)])
		}
	})
	handle := Bench{
		Name:           "dnsbl_handle",
		NsPerOp:        pr.NsPerOp(),
		AllocsPerOp:    pr.AllocsPerOp(),
		BytesPerOp:     pr.AllocedBytesPerOp(),
		SerialNsPerOp:  sr.NsPerOp(),
		MaxAllocsPerOp: allocBudgets["dnsbl_handle"],
		MinSpeedup:     minSpeedups["dnsbl_handle"],
		MinCPU:         minCPUs["dnsbl_handle"],
	}
	if handle.NsPerOp > 0 {
		s := float64(sr.NsPerOp()) / float64(handle.NsPerOp)
		handle.Speedup = &s
	}
	rep.Benchmarks = append(rep.Benchmarks, handle)

	// End-to-end over UDP: 2-zone/4-shard plane vs the legacy server.
	fmt.Fprintln(os.Stderr, "bench dnsbl_serve_qps (two UDP blasts)...")
	planeRep := blastPlane(feed)
	legacyRep := blastLegacy(feed)

	qpsRow := Bench{
		Name:       "dnsbl_serve_qps",
		NsPerOp:    nsPerQuery(planeRep.QPS),
		MinSpeedup: minSpeedups["dnsbl_serve_qps"],
		MinCPU:     minCPUs["dnsbl_serve_qps"],
	}
	if serial := nsPerQuery(legacyRep.QPS); serial > 0 {
		qpsRow.SerialNsPerOp = serial
		if qpsRow.NsPerOp > 0 {
			s := float64(serial) / float64(qpsRow.NsPerOp)
			qpsRow.Speedup = &s
		}
	}
	rep.Benchmarks = append(rep.Benchmarks,
		qpsRow,
		Bench{
			Name:    "dnsbl_serve_p99",
			NsPerOp: planeRep.P99.Nanoseconds(),
			MinCPU:  minCPUs["dnsbl_serve_p99"],
		})
}

// nsPerQuery converts a QPS figure into the report's ns/op unit.
func nsPerQuery(qps float64) int64 {
	if qps <= 0 {
		return 0
	}
	return int64(1e9 / qps)
}

// blastWorkload is the query mix both blasts use.
func blastWorkload() (listed []string, unlisted []string) {
	for i := 0; i < serveFeedDomains; i++ {
		listed = append(listed, string(serveDomain(i)))
		unlisted = append(unlisted, fmt.Sprintf("miss%03d.example", i))
	}
	return listed, unlisted
}

// blastPlane boots the 2-zone/4-shard plane server and blasts it.
func blastPlane(feed *feeds.Feed) *dnsblplane.Report {
	plane, err := dnsblplane.New(dnsblplane.Config{
		Zones: []dnsblplane.ZoneConfig{
			{Suffix: "dbl.bench"}, {Suffix: "uribl.bench"},
		},
		Shards: 4,
	})
	if err != nil {
		fatalf("blast plane: %v", err)
	}
	for _, z := range []string{"dbl.bench", "uribl.bench"} {
		if _, err := plane.LoadFeed(z, feed); err != nil {
			fatalf("blast plane load %s: %v", z, err)
		}
	}
	srv := &dnsblplane.Server{Plane: plane}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fatalf("blast plane listen: %v", err)
	}
	defer srv.Close()
	return blast(addr.String(), []string{"dbl.bench", "uribl.bench"})
}

// blastLegacy boots the single-zone legacy server and blasts it — the
// serial reference dnsbl_serve_qps is committed against.
func blastLegacy(feed *feeds.Feed) *dnsblplane.Report {
	srv := dnsbl.NewServer("dbl.bench", dnsbl.FeedZone{Feed: feed})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fatalf("blast legacy listen: %v", err)
	}
	defer srv.Close()
	return blast(addr.String(), []string{"dbl.bench"})
}

// blast runs an unverified (pure throughput) blast; correctness is the
// load-smoke job's and the package tests' job, not the benchmark's.
func blast(addr string, zones []string) *dnsblplane.Report {
	listed, unlisted := blastWorkload()
	b := &dnsblplane.Blaster{
		Addr:     addr,
		Zones:    zones,
		Listed:   listed,
		Unlisted: unlisted,
		Clients:  4,
		Seed:     1,
		Timeout:  2 * time.Second,
	}
	rep, err := b.Run(context.Background(), blastDuration)
	if err != nil {
		fatalf("blast %s: %v", addr, err)
	}
	if rep.Received == 0 {
		fatalf("blast %s: no answers received", addr)
	}
	return rep
}
