// Command bench measures the hot analysis and simulation paths against
// their pinned serial references and emits a machine-readable
// BENCH_<rev>.json next to a human-readable table.
//
// Usage:
//
//	go run ./cmd/bench                      # measure, write BENCH_<rev>.json
//	go run ./cmd/bench -scenario small      # quicker, reduced-scale run
//	go run ./cmd/bench -check BENCH_baseline.json
//
// With -check, the freshly measured results are compared against the
// committed baseline and the command exits non-zero if any tracked
// benchmark regresses by more than 25%. Benchmarks that carry a serial
// reference are compared on their speedup ratio (parallel vs pinned
// serial, measured in the same process on the same machine), which is
// stable across hardware; reference-free benchmarks fall back to raw
// ns/op, so their baseline must be regenerated when the CI hardware
// changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/benchref"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/simulate"
)

// Report is the BENCH_<rev>.json document.
type Report struct {
	Rev        string  `json:"rev"`
	GoVersion  string  `json:"go"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Scenario   string  `json:"scenario"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one tracked benchmark. SerialNsPerOp is only present for
// cases with a pinned serial reference; Speedup is emitted for every
// entry and is explicitly null where no reference exists, so report
// consumers can tell "no reference" apart from "field elided".
type Bench struct {
	Name          string   `json:"name"`
	NsPerOp       int64    `json:"ns_per_op"`
	AllocsPerOp   int64    `json:"allocs_per_op"`
	BytesPerOp    int64    `json:"bytes_per_op"`
	SerialNsPerOp int64    `json:"serial_ns_per_op,omitempty"`
	Speedup       *float64 `json:"speedup"`
	// MaxAllocsPerOp is the committed allocation budget for this
	// benchmark (0 = untracked). -check fails when a run exceeds the
	// baseline's budget by more than allocHeadroom.
	MaxAllocsPerOp int64 `json:"max_allocs_per_op,omitempty"`
	// MinSpeedup is the committed parallel-scaling floor (0 = none).
	// -check enforces it on machines with enough cores to scale.
	MinSpeedup float64 `json:"min_speedup,omitempty"`
	// MinCPU is the core count this benchmark's numbers were committed
	// at (0 = any machine). On a smaller machine -check downgrades every
	// regression in this entry to a loud warning: serving-path QPS and
	// tail latency collapse when readers, workers and the blaster share
	// one core, and failing CI for the hardware would hide real signal.
	MinCPU int `json:"min_cpu,omitempty"`
}

// maxRegression is the tolerated slowdown before -check fails: 25%.
const maxRegression = 1.25

// allocHeadroom is the tolerated overshoot of an allocation budget
// before -check fails: 10%.
const allocHeadroom = 1.10

// allocBudgets pins the per-op allocation ceilings for the hot-path
// benchmarks. The budgets ride inside BENCH_baseline.json (written by
// every measuring run), so the gate compares fresh runs against the
// committed numbers, not against whatever this source tree says.
var allocBudgets = map[string]int64{
	"dataset_build":    110_000,
	"dataset_build_w4": 110_000,
	"labeling":         20_000,
	"labeling_w4":      20_000,
	// The plane's steady-state fast path answers without allocating; a
	// budget of one absorbs amortized warmup noise only.
	"dnsbl_handle": 1,
}

// minSpeedups pins the parallel-scaling floors for the explicit
// multi-worker benchmarks.
var minSpeedups = map[string]float64{
	"dataset_build_w4": 1.5,
	"labeling_w4":      1.5,
	// The plane's in-process handling path vs the legacy codec-per-query
	// server. Measured ≈10x on the reference box; committed conservative.
	"dnsbl_handle": 6.0,
	// End-to-end UDP throughput, plane vs legacy server. Loopback
	// syscalls dominate both sides, so the committed floor only claims
	// the plane is no slower than the legacy server end to end; the
	// handling-path floor above carries the speedup story.
	"dnsbl_serve_qps": 1.1,
}

// minCPUs pins the core counts the serving-path benchmarks were
// committed at; below them -check warns instead of failing.
var minCPUs = map[string]int{
	"dnsbl_serve_qps": 4,
	"dnsbl_serve_p99": 4,
}

// minCPUForSpeedupGate is the core count below which the MinSpeedup
// gate is skipped (loudly): a 1- or 2-core machine cannot show 4-way
// scaling no matter how healthy the engine is.
const minCPUForSpeedupGate = 4

func main() {
	rev := flag.String("rev", "", "revision tag for the output filename (default: git short hash)")
	out := flag.String("o", "", "output path (default BENCH_<rev>.json)")
	check := flag.String("check", "", "baseline BENCH_*.json to compare against; exit 1 on >25% regression or blown alloc budget")
	diff := flag.String("diff", "", "baseline BENCH_*.json to diff against; print a markdown delta table on stdout")
	in := flag.String("in", "", "load an existing BENCH_*.json instead of measuring (for -check/-diff of a saved run)")
	scenario := flag.String("scenario", "default", "scenario scale: default or small")
	flag.Parse()

	var rep *Report
	if *in != "" {
		loaded, err := loadReport(*in)
		if err != nil {
			fatalf("load report %s: %v", *in, err)
		}
		rep = loaded
	} else {
		if *rev == "" {
			*rev = gitRev()
		}
		if *out == "" {
			*out = fmt.Sprintf("BENCH_%s.json", *rev)
		}
		rep = measure(*scenario, *rev)

		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("marshal report: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n\n%s", *out, table(rep))
	}

	if *diff != "" {
		base, err := loadReport(*diff)
		if err != nil {
			fatalf("load baseline %s: %v", *diff, err)
		}
		fmt.Print(markdownDiff(base, rep))
	}

	if *check != "" {
		base, err := loadReport(*check)
		if err != nil {
			fatalf("load baseline %s: %v", *check, err)
		}
		regs, warns := findRegressions(base, rep)
		for _, w := range warns {
			fmt.Fprintf(os.Stderr, "WARNING: %s\n", w)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "\nREGRESSIONS vs %s (rev %s):\n", *check, base.Rev)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("\nno regressions vs %s (rev %s)\n", *check, base.Rev)
	}
}

// measure runs every tracked benchmark and assembles the report.
func measure(scenario, rev string) *Report {
	var sc simulate.Scenario
	switch scenario {
	case "default":
		sc = simulate.Default(2010)
	case "small":
		sc = simulate.Small(2010)
	default:
		fatalf("unknown scenario %q (want default or small)", scenario)
	}

	fmt.Fprintf(os.Stderr, "generating %s-scale world...\n", scenario)
	world, err := ecosystem.Generate(sc.Ecosystem)
	if err != nil {
		fatalf("generate world: %v", err)
	}
	res, err := mailflow.New(world, sc.Collection).Run()
	if err != nil {
		fatalf("collection run: %v", err)
	}
	ds := analysis.NewDataset(world, res)

	rep := &Report{
		Rev:        rev,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scenario:   scenario,
	}

	run := func(name string, par, serial func()) {
		fmt.Fprintf(os.Stderr, "bench %s...\n", name)
		pr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				par()
			}
		})
		bench := Bench{
			Name:           name,
			NsPerOp:        pr.NsPerOp(),
			AllocsPerOp:    pr.AllocsPerOp(),
			BytesPerOp:     pr.AllocedBytesPerOp(),
			MaxAllocsPerOp: allocBudgets[name],
			MinSpeedup:     minSpeedups[name],
			MinCPU:         minCPUs[name],
		}
		if serial != nil {
			sr := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					serial()
				}
			})
			bench.SerialNsPerOp = sr.NsPerOp()
			if bench.NsPerOp > 0 {
				s := float64(sr.NsPerOp()) / float64(bench.NsPerOp)
				bench.Speedup = &s
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, bench)
	}

	// Feed collection: the parallel chunked engine vs the pre-parallel
	// engine pinned in internal/benchref.
	run("dataset_build",
		func() {
			if _, err := mailflow.New(world, sc.Collection).Run(); err != nil {
				fatalf("parallel engine: %v", err)
			}
		},
		func() {
			if _, err := benchref.New(world, sc.Collection).Run(); err != nil {
				fatalf("benchref engine: %v", err)
			}
		})

	// The same engine pinned at Workers=4: the scaling gate the CI
	// bench-gate job enforces (speedup vs the serial reference).
	cfg4 := sc.Collection
	cfg4.Workers = 4
	run("dataset_build_w4",
		func() {
			if _, err := mailflow.New(world, cfg4).Run(); err != nil {
				fatalf("parallel engine (w4): %v", err)
			}
		},
		func() {
			if _, err := benchref.New(world, sc.Collection).Run(); err != nil {
				fatalf("benchref engine: %v", err)
			}
		})

	// Crawl labeling: concurrent vs one worker.
	run("labeling",
		func() { analysis.BuildLabelsConcurrent(world, res, 0) },
		func() { analysis.BuildLabelsConcurrent(world, res, 1) })
	run("labeling_w4",
		func() { analysis.BuildLabelsConcurrent(world, res, 4) },
		func() { analysis.BuildLabelsConcurrent(world, res, 1) })

	// Analysis rows vs the serial references in analysis/serialref.go.
	run("coverage_table3",
		func() { analysis.Coverage(ds, analysis.ClassAll) },
		func() { analysis.CoverageSerial(ds, analysis.ClassAll) })
	run("intersections_fig2",
		func() { analysis.Intersections(ds, analysis.ClassAll) },
		func() { analysis.IntersectionsSerial(ds, analysis.ClassAll) })
	run("purity_table2",
		func() { analysis.Purity(ds) },
		func() { analysis.PuritySerial(ds) })

	// Reference-free rows, tracked on raw ns/op only.
	run("proportion_fig7", func() { analysis.VariationDistances(ds) }, nil)
	fig9 := analysis.Fig9Feeds(ds)
	run("timing_fig9", func() { analysis.FirstAppearance(ds, fig9) }, nil)

	// The DNSBL serving plane: in-process handling speedup plus
	// end-to-end UDP throughput and tail latency (serve.go).
	measureServe(rep)

	return rep
}

// speedupOf returns a benchmark's speedup, or 0 when it has no serial
// reference.
func speedupOf(b Bench) float64 {
	if b.Speedup == nil {
		return 0
	}
	return *b.Speedup
}

// findRegressions compares cur against base and describes every
// benchmark that regressed beyond maxRegression, blew its committed
// allocation budget by more than allocHeadroom, or fell under its
// committed scaling floor — ALL of them, accumulated across every
// entry, so one -check run surfaces the complete damage instead of
// failing on the first hit. Benchmarks present in only one report are
// ignored (new or retired cases). The second return is a list of loud
// warnings for conditions that don't fail the check: a serial
// reference absent on one side (the other comparison still runs), a
// speedup floor skipped because the machine lacks the cores, or an
// entry whose committed MinCPU exceeds the current machine — every
// regression in such an entry is downgraded to a warning wholesale.
func findRegressions(base, cur *Report) (regs, warns []string) {
	baseline := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	for _, c := range cur.Benchmarks {
		b, ok := baseline[c.Name]
		if !ok {
			continue
		}
		// Per-entry regressions accumulate here first: when the entry
		// was committed on bigger hardware than this run has, they all
		// demote to warnings instead of failing the check.
		var entry []string
		bs, cs := speedupOf(b), speedupOf(c)
		switch {
		case bs > 0 && cs > 0:
			// Speedup is measured against the in-process serial
			// reference, so it transfers across machines.
			if cs < bs/maxRegression {
				entry = append(entry, fmt.Sprintf(
					"%s: speedup %.2fx, baseline %.2fx (>25%% drop)",
					c.Name, cs, bs))
			}
		case bs > 0 || cs > 0:
			// A reference exists on one side only — say so instead of
			// silently skipping, and fall back to raw ns/op.
			warns = append(warns, fmt.Sprintf(
				"%s: serial reference present in only one report (baseline %.2fx, current %.2fx); comparing raw ns/op instead",
				c.Name, bs, cs))
			fallthrough
		default:
			if b.NsPerOp > 0 && float64(c.NsPerOp) > float64(b.NsPerOp)*maxRegression {
				entry = append(entry, fmt.Sprintf(
					"%s: %d ns/op, baseline %d ns/op (>25%% slower)",
					c.Name, c.NsPerOp, b.NsPerOp))
			}
		}
		// Allocation budget: the committed baseline's budget is the
		// contract; headroom absorbs allocator noise.
		if budget := b.MaxAllocsPerOp; budget > 0 {
			if float64(c.AllocsPerOp) > float64(budget)*allocHeadroom {
				entry = append(entry, fmt.Sprintf(
					"%s: %d allocs/op, budget %d (>%.0f%% over)",
					c.Name, c.AllocsPerOp, budget, (allocHeadroom-1)*100))
			}
		}
		// Scaling floor: only meaningful with enough cores to scale.
		if floor := b.MinSpeedup; floor > 0 && cs > 0 {
			if cur.NumCPU < minCPUForSpeedupGate {
				warns = append(warns, fmt.Sprintf(
					"%s: speedup floor %.2fx not enforced on a %d-CPU machine (need ≥%d)",
					c.Name, floor, cur.NumCPU, minCPUForSpeedupGate))
			} else if cs < floor {
				entry = append(entry, fmt.Sprintf(
					"%s: speedup %.2fx under committed floor %.2fx",
					c.Name, cs, floor))
			}
		}
		if b.MinCPU > 0 && cur.NumCPU < b.MinCPU {
			for _, r := range entry {
				warns = append(warns, fmt.Sprintf(
					"NOT ENFORCED on %d CPUs (entry committed at ≥%d): %s",
					cur.NumCPU, b.MinCPU, r))
			}
		} else {
			regs = append(regs, entry...)
		}
	}
	return regs, warns
}

// markdownDiff renders a GitHub-flavored markdown delta table of cur
// vs base, for CI job summaries.
func markdownDiff(base, cur *Report) string {
	baseline := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	pct := func(old, new int64) string {
		if old <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(float64(new)-float64(old))/float64(old))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Bench delta: %s vs baseline %s\n\n", cur.Rev, base.Rev)
	fmt.Fprintf(&sb, "GOMAXPROCS=%d cpus=%d scenario=%s\n\n", cur.GOMAXPROCS, cur.NumCPU, cur.Scenario)
	sb.WriteString("| benchmark | ns/op | Δ ns/op | allocs/op | Δ allocs | budget | speedup |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range cur.Benchmarks {
		dns, dallocs, budget, speed := "new", "new", "—", "—"
		if b, ok := baseline[c.Name]; ok {
			dns = pct(b.NsPerOp, c.NsPerOp)
			dallocs = pct(b.AllocsPerOp, c.AllocsPerOp)
		}
		if c.MaxAllocsPerOp > 0 {
			budget = fmt.Sprintf("%d", c.MaxAllocsPerOp)
		}
		if s := speedupOf(c); s > 0 {
			speed = fmt.Sprintf("%.2fx", s)
		}
		fmt.Fprintf(&sb, "| %s | %d | %s | %d | %s | %s | %s |\n",
			c.Name, c.NsPerOp, dns, c.AllocsPerOp, dallocs, budget, speed)
	}
	return sb.String()
}

// table renders the human-readable summary.
func table(rep *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rev %s  %s  GOMAXPROCS=%d  cpus=%d  scenario=%s\n\n",
		rep.Rev, rep.GoVersion, rep.GOMAXPROCS, rep.NumCPU, rep.Scenario)
	fmt.Fprintf(&sb, "%-22s %14s %12s %14s %8s\n",
		"benchmark", "ns/op", "allocs/op", "serial ns/op", "speedup")
	for _, b := range rep.Benchmarks {
		serial, speedup := "-", "-"
		if b.SerialNsPerOp > 0 {
			serial = fmt.Sprintf("%d", b.SerialNsPerOp)
			speedup = fmt.Sprintf("%.2fx", speedupOf(b))
		}
		fmt.Fprintf(&sb, "%-22s %14d %12d %14s %8s\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, serial, speedup)
	}
	return sb.String()
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(buf, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// gitRev returns the short HEAD hash, or "dev" outside a checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short=8", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
