package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func rep(benches ...Bench) *Report {
	return &Report{Rev: "test", NumCPU: 8, Benchmarks: benches}
}

func sp(v float64) *float64 { return &v }

func TestFindRegressionsSpeedupDrop(t *testing.T) {
	base := rep(Bench{Name: "coverage", NsPerOp: 100, SerialNsPerOp: 400, Speedup: sp(4.0)})

	// A 25% speedup drop is still tolerated.
	ok := rep(Bench{Name: "coverage", NsPerOp: 500, SerialNsPerOp: 1650, Speedup: sp(3.3)})
	if regs, _ := findRegressions(base, ok); len(regs) != 0 {
		t.Fatalf("within-tolerance speedup flagged: %v", regs)
	}

	// Below baseline/1.25 fails — even though raw ns/op improved,
	// meaning the check is machine-independent.
	bad := rep(Bench{Name: "coverage", NsPerOp: 50, SerialNsPerOp: 100, Speedup: sp(2.0)})
	regs, _ := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "coverage") {
		t.Fatalf("speedup regression not flagged: %v", regs)
	}
}

func TestFindRegressionsNsPerOp(t *testing.T) {
	base := rep(Bench{Name: "timing", NsPerOp: 1000})

	if regs, _ := findRegressions(base, rep(Bench{Name: "timing", NsPerOp: 1200})); len(regs) != 0 {
		t.Fatalf("within-tolerance ns/op flagged: %v", regs)
	}
	regs, _ := findRegressions(base, rep(Bench{Name: "timing", NsPerOp: 1300}))
	if len(regs) != 1 || !strings.Contains(regs[0], "timing") {
		t.Fatalf("ns/op regression not flagged: %v", regs)
	}
}

func TestFindRegressionsIgnoresUnmatched(t *testing.T) {
	base := rep(Bench{Name: "retired", NsPerOp: 1})
	cur := rep(Bench{Name: "brand-new", NsPerOp: 1 << 40})
	if regs, _ := findRegressions(base, cur); len(regs) != 0 {
		t.Fatalf("unmatched benchmarks flagged: %v", regs)
	}
}

func TestFindRegressionsAllocBudget(t *testing.T) {
	base := rep(Bench{Name: "dataset_build", NsPerOp: 100, MaxAllocsPerOp: 100_000})

	// Within budget plus 10% headroom: fine.
	ok := rep(Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 109_000})
	if regs, _ := findRegressions(base, ok); len(regs) != 0 {
		t.Fatalf("within-budget allocs flagged: %v", regs)
	}

	// More than 10% over the committed budget: fail.
	bad := rep(Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 111_000})
	regs, _ := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("blown alloc budget not flagged: %v", regs)
	}
}

func TestFindRegressionsSpeedupFloor(t *testing.T) {
	base := rep(Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 200, Speedup: sp(2.0), MinSpeedup: 1.5})

	// 1.7x survives the 25% drop rule (2.0/1.25 = 1.6) but a floor of
	// 1.75 catches it.
	base.Benchmarks[0].MinSpeedup = 1.75
	bad := rep(Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 170, Speedup: sp(1.7)})
	regs, _ := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "floor") {
		t.Fatalf("under-floor speedup not flagged: %v", regs)
	}

	// On a small machine the floor is downgraded to a warning.
	small := rep(Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 80, Speedup: sp(0.8)})
	small.NumCPU = 1
	regs, warns := findRegressions(base, small)
	// The 25% speedup-drop rule still fires (0.8 < 2.0/1.25); the
	// floor itself must not.
	for _, r := range regs {
		if strings.Contains(r, "floor") {
			t.Fatalf("floor enforced on 1-CPU machine: %v", regs)
		}
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "not enforced") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped floor produced no warning: %v", warns)
	}
}

func TestFindRegressionsWarnsOnAbsentRef(t *testing.T) {
	base := rep(Bench{Name: "proportion_fig7", NsPerOp: 1000, SerialNsPerOp: 2000, Speedup: sp(2.0)})
	cur := rep(Bench{Name: "proportion_fig7", NsPerOp: 1000})
	regs, warns := findRegressions(base, cur)
	if len(regs) != 0 {
		t.Fatalf("absent ref should fall back to ns/op (no regression here): %v", regs)
	}
	if len(warns) == 0 || !strings.Contains(warns[0], "only one report") {
		t.Fatalf("absent serial reference not warned about: %v", warns)
	}
}

func TestSpeedupNullInJSON(t *testing.T) {
	buf, err := json.Marshal(Bench{Name: "proportion_fig7", NsPerOp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"speedup":null`) {
		t.Fatalf("reference-free bench must emit explicit null speedup: %s", buf)
	}
}

func TestMarkdownDiff(t *testing.T) {
	base := rep(Bench{Name: "dataset_build", NsPerOp: 200, AllocsPerOp: 1000})
	cur := rep(
		Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 500, MaxAllocsPerOp: 600, Speedup: sp(2.0)},
		Bench{Name: "brand-new", NsPerOp: 10},
	)
	md := markdownDiff(base, cur)
	for _, want := range []string{"| dataset_build | 100 | -50.0% | 500 | -50.0% | 600 | 2.00x |", "| brand-new | 10 | new |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown diff missing %q:\n%s", want, md)
		}
	}
}
