package main

import (
	"strings"
	"testing"
)

func rep(benches ...Bench) *Report {
	return &Report{Rev: "test", Benchmarks: benches}
}

func TestFindRegressionsSpeedupDrop(t *testing.T) {
	base := rep(Bench{Name: "coverage", NsPerOp: 100, SerialNsPerOp: 400, Speedup: 4.0})

	// A 25% speedup drop is still tolerated.
	ok := rep(Bench{Name: "coverage", NsPerOp: 500, SerialNsPerOp: 1650, Speedup: 3.3})
	if regs := findRegressions(base, ok); len(regs) != 0 {
		t.Fatalf("within-tolerance speedup flagged: %v", regs)
	}

	// Below baseline/1.25 fails — even though raw ns/op improved,
	// meaning the check is machine-independent.
	bad := rep(Bench{Name: "coverage", NsPerOp: 50, SerialNsPerOp: 100, Speedup: 2.0})
	regs := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "coverage") {
		t.Fatalf("speedup regression not flagged: %v", regs)
	}
}

func TestFindRegressionsNsPerOp(t *testing.T) {
	base := rep(Bench{Name: "timing", NsPerOp: 1000})

	if regs := findRegressions(base, rep(Bench{Name: "timing", NsPerOp: 1200})); len(regs) != 0 {
		t.Fatalf("within-tolerance ns/op flagged: %v", regs)
	}
	regs := findRegressions(base, rep(Bench{Name: "timing", NsPerOp: 1300}))
	if len(regs) != 1 || !strings.Contains(regs[0], "timing") {
		t.Fatalf("ns/op regression not flagged: %v", regs)
	}
}

func TestFindRegressionsIgnoresUnmatched(t *testing.T) {
	base := rep(Bench{Name: "retired", NsPerOp: 1})
	cur := rep(Bench{Name: "brand-new", NsPerOp: 1 << 40})
	if regs := findRegressions(base, cur); len(regs) != 0 {
		t.Fatalf("unmatched benchmarks flagged: %v", regs)
	}
}
