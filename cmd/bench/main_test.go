package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func rep(benches ...Bench) *Report {
	return &Report{Rev: "test", NumCPU: 8, Benchmarks: benches}
}

func sp(v float64) *float64 { return &v }

func TestFindRegressionsSpeedupDrop(t *testing.T) {
	base := rep(Bench{Name: "coverage", NsPerOp: 100, SerialNsPerOp: 400, Speedup: sp(4.0)})

	// A 25% speedup drop is still tolerated.
	ok := rep(Bench{Name: "coverage", NsPerOp: 500, SerialNsPerOp: 1650, Speedup: sp(3.3)})
	if regs, _ := findRegressions(base, ok); len(regs) != 0 {
		t.Fatalf("within-tolerance speedup flagged: %v", regs)
	}

	// Below baseline/1.25 fails — even though raw ns/op improved,
	// meaning the check is machine-independent.
	bad := rep(Bench{Name: "coverage", NsPerOp: 50, SerialNsPerOp: 100, Speedup: sp(2.0)})
	regs, _ := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "coverage") {
		t.Fatalf("speedup regression not flagged: %v", regs)
	}
}

func TestFindRegressionsNsPerOp(t *testing.T) {
	base := rep(Bench{Name: "timing", NsPerOp: 1000})

	if regs, _ := findRegressions(base, rep(Bench{Name: "timing", NsPerOp: 1200})); len(regs) != 0 {
		t.Fatalf("within-tolerance ns/op flagged: %v", regs)
	}
	regs, _ := findRegressions(base, rep(Bench{Name: "timing", NsPerOp: 1300}))
	if len(regs) != 1 || !strings.Contains(regs[0], "timing") {
		t.Fatalf("ns/op regression not flagged: %v", regs)
	}
}

func TestFindRegressionsIgnoresUnmatched(t *testing.T) {
	base := rep(Bench{Name: "retired", NsPerOp: 1})
	cur := rep(Bench{Name: "brand-new", NsPerOp: 1 << 40})
	if regs, _ := findRegressions(base, cur); len(regs) != 0 {
		t.Fatalf("unmatched benchmarks flagged: %v", regs)
	}
}

func TestFindRegressionsAllocBudget(t *testing.T) {
	base := rep(Bench{Name: "dataset_build", NsPerOp: 100, MaxAllocsPerOp: 100_000})

	// Within budget plus 10% headroom: fine.
	ok := rep(Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 109_000})
	if regs, _ := findRegressions(base, ok); len(regs) != 0 {
		t.Fatalf("within-budget allocs flagged: %v", regs)
	}

	// More than 10% over the committed budget: fail.
	bad := rep(Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 111_000})
	regs, _ := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("blown alloc budget not flagged: %v", regs)
	}
}

func TestFindRegressionsSpeedupFloor(t *testing.T) {
	base := rep(Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 200, Speedup: sp(2.0), MinSpeedup: 1.5})

	// 1.7x survives the 25% drop rule (2.0/1.25 = 1.6) but a floor of
	// 1.75 catches it.
	base.Benchmarks[0].MinSpeedup = 1.75
	bad := rep(Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 170, Speedup: sp(1.7)})
	regs, _ := findRegressions(base, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "floor") {
		t.Fatalf("under-floor speedup not flagged: %v", regs)
	}

	// On a small machine the floor is downgraded to a warning.
	small := rep(Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 80, Speedup: sp(0.8)})
	small.NumCPU = 1
	regs, warns := findRegressions(base, small)
	// The 25% speedup-drop rule still fires (0.8 < 2.0/1.25); the
	// floor itself must not.
	for _, r := range regs {
		if strings.Contains(r, "floor") {
			t.Fatalf("floor enforced on 1-CPU machine: %v", regs)
		}
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "not enforced") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped floor produced no warning: %v", warns)
	}
}

func TestFindRegressionsWarnsOnAbsentRef(t *testing.T) {
	base := rep(Bench{Name: "proportion_fig7", NsPerOp: 1000, SerialNsPerOp: 2000, Speedup: sp(2.0)})
	cur := rep(Bench{Name: "proportion_fig7", NsPerOp: 1000})
	regs, warns := findRegressions(base, cur)
	if len(regs) != 0 {
		t.Fatalf("absent ref should fall back to ns/op (no regression here): %v", regs)
	}
	if len(warns) == 0 || !strings.Contains(warns[0], "only one report") {
		t.Fatalf("absent serial reference not warned about: %v", warns)
	}
}

func TestSpeedupNullInJSON(t *testing.T) {
	buf, err := json.Marshal(Bench{Name: "proportion_fig7", NsPerOp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"speedup":null`) {
		t.Fatalf("reference-free bench must emit explicit null speedup: %s", buf)
	}
}

func TestMarkdownDiff(t *testing.T) {
	base := rep(Bench{Name: "dataset_build", NsPerOp: 200, AllocsPerOp: 1000})
	cur := rep(
		Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 500, MaxAllocsPerOp: 600, Speedup: sp(2.0)},
		Bench{Name: "brand-new", NsPerOp: 10},
	)
	md := markdownDiff(base, cur)
	for _, want := range []string{"| dataset_build | 100 | -50.0% | 500 | -50.0% | 600 | 2.00x |", "| brand-new | 10 | new |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown diff missing %q:\n%s", want, md)
		}
	}
}

// TestFindRegressionsReportsAll: one -check run surfaces every
// regression across every entry — a speedup drop, a blown alloc
// budget, a raw ns/op slide and an under-floor scaling number all at
// once, instead of failing on the first hit.
func TestFindRegressionsReportsAll(t *testing.T) {
	base := rep(
		Bench{Name: "coverage", NsPerOp: 100, SerialNsPerOp: 400, Speedup: sp(4.0)},
		Bench{Name: "dataset_build", NsPerOp: 100, MaxAllocsPerOp: 100_000},
		Bench{Name: "timing", NsPerOp: 1000},
		Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 400, Speedup: sp(4.0), MinSpeedup: 3.9},
	)
	cur := rep(
		Bench{Name: "coverage", NsPerOp: 100, SerialNsPerOp: 200, Speedup: sp(2.0)},
		Bench{Name: "dataset_build", NsPerOp: 100, AllocsPerOp: 200_000},
		Bench{Name: "timing", NsPerOp: 2000},
		Bench{Name: "dataset_build_w4", NsPerOp: 100, SerialNsPerOp: 380, Speedup: sp(3.8)},
	)
	regs, _ := findRegressions(base, cur)
	if len(regs) != 4 {
		t.Fatalf("want all 4 regressions in one pass, got %d: %v", len(regs), regs)
	}
	for _, want := range []string{"coverage", "dataset_build:", "timing", "floor"} {
		found := false
		for _, r := range regs {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("regression list missing %q: %v", want, regs)
		}
	}
}

// TestFindRegressionsMinCPUDowngrade: an entry committed at MinCPU=4
// demotes every one of its regressions to warnings on a smaller
// machine — while other entries keep failing the check normally.
func TestFindRegressionsMinCPUDowngrade(t *testing.T) {
	base := rep(
		Bench{Name: "dnsbl_serve_qps", NsPerOp: 1000, SerialNsPerOp: 3000,
			Speedup: sp(3.0), MinSpeedup: 1.5, MinCPU: 4},
		Bench{Name: "dnsbl_serve_p99", NsPerOp: 50_000, MinCPU: 4},
		Bench{Name: "timing", NsPerOp: 1000},
	)
	cur := rep(
		// Collapsed throughput AND under the floor: two would-be failures.
		Bench{Name: "dnsbl_serve_qps", NsPerOp: 10_000, SerialNsPerOp: 11_000, Speedup: sp(1.1)},
		// Tail latency blown 10x: a third.
		Bench{Name: "dnsbl_serve_p99", NsPerOp: 500_000},
		// And an unprotected entry that regressed for real.
		Bench{Name: "timing", NsPerOp: 2000},
	)
	cur.NumCPU = 1
	regs, warns := findRegressions(base, cur)
	if len(regs) != 1 || !strings.Contains(regs[0], "timing") {
		t.Fatalf("want only the unprotected regression, got %v", regs)
	}
	downgraded := 0
	for _, w := range warns {
		if strings.Contains(w, "NOT ENFORCED") {
			downgraded++
		}
	}
	if downgraded < 2 {
		t.Fatalf("MinCPU downgrades missing from warnings: %v", warns)
	}

	// With enough cores the same report fails outright.
	cur.NumCPU = 8
	regs, _ = findRegressions(base, cur)
	if len(regs) < 3 {
		t.Fatalf("big machine must enforce the serve entries: %v", regs)
	}
}
