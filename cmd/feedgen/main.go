// Command feedgen runs the collection pipeline and serializes the ten
// synthetic feeds as TSV files, one per feed, for use with cmd/feedstats
// or external tooling. With -serve it also publishes every feed's raw
// record log over the feedsync subscription protocol, so consumers can
// catch up and tail the way real feed subscribers do.
//
// Usage:
//
//	feedgen [-seed N] [-small] [-out DIR] [-serve ADDR]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/feedsync"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/simulate"
)

func main() {
	seed := flag.Uint64("seed", 2010, "scenario seed")
	small := flag.Bool("small", false, "reduced test-scale scenario")
	out := flag.String("out", "feeds-out", "output directory")
	serve := flag.String("serve", "", "also publish raw record logs via feedsync on this address")
	flag.Parse()

	scen := simulate.Default(*seed)
	if *small {
		scen = simulate.Small(*seed)
	}
	world, err := ecosystem.Generate(scen.Ecosystem)
	if err != nil {
		fail(err)
	}

	var sync *feedsync.Server
	eng := mailflow.New(world, scen.Collection)
	if *serve != "" {
		sync = feedsync.NewServer()
		eng.OnFeeds = func(fs map[string]*feeds.Feed) {
			for _, name := range mailflow.FeedNames {
				f := fs[name]
				if err := sync.Register(name, f.Kind, f.HasVolume, f.URLs); err != nil {
					fail(err)
				}
				n := name
				f.Tap = func(rec feeds.RawRecord) {
					sync.Publish(n, rec) //nolint:errcheck
				}
			}
		}
	}
	res, err := eng.Run()
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, name := range res.Order {
		f := res.Feed(name)
		path := filepath.Join(*out, name+".tsv")
		file, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := f.WriteTSV(file); err != nil {
			file.Close()
			fail(err)
		}
		if err := file.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %-20s %10d samples  %8d domains\n", path, f.Samples(), f.Unique())
	}

	if sync != nil {
		addr, err := sync.Listen(*serve)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nserving raw record logs on tcp://%s (SUB <feed> <offset> <catchup|tail>)\n", addr)
		fmt.Println("press ctrl-c to stop")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		sync.Close()
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "feedgen: %v\n", err)
	os.Exit(1)
}
