package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tasterschoice/internal/lint"
)

// runStandalone loads packages with the go command and runs the suite,
// printing findings in the familiar file:line:col format. Returns the
// process exit code.
func runStandalone(args []string) int {
	fs := flag.NewFlagSet("tastervet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tastervet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintln(fs.Output(), "\nFlags:")
		fs.PrintDefaults()
	}
	tags := fs.String("tags", "", "build tags to list packages with (e.g. chaos)")
	tests := fs.Bool("tests", false, "also analyze _test.go files and external test packages")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*runNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 2
	}

	pkgs, err := lint.Load(".", patterns, *tags, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 2
	}

	// One fact store for the whole run: Load returns packages in
	// dependency order, so each package's interprocedural facts are in
	// the store before any importer is analyzed.
	store := lint.NewFactStore()
	findings := 0
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "tastervet: %s: type error (analysis may be incomplete): %v\n", p.ImportPath, terr)
		}
		run := analyzers
		if p.FactsOnly {
			run = nil // facts feed the targets; no diagnostics of its own
		}
		diags, err := lint.RunAnalyzersFacts(p.Fset, p.Files, p.Pkg, p.Info, run, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tastervet:", err)
			return 2
		}
		if p.FactsOnly {
			continue
		}
		for _, d := range diags {
			findings++
			fmt.Printf("%s: [%s] %s\n", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tastervet: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if names == "" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("unknown analyzer %q in -run", n)
	}
	return out, nil
}
