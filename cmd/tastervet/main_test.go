package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"tasterschoice/internal/lint"
)

// TestTreeClean is the gate the CI lint job enforces: the suite must
// run clean on the repository's own packages. Test binaries run from
// their package directory, so the module-wide pattern (not ./...) is
// used.
func TestTreeClean(t *testing.T) {
	pkgs, err := lint.Load(".", []string{"tasterschoice/internal/..."}, "", false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.ImportPath, terr)
		}
		diags, err := lint.RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, lint.All())
		if err != nil {
			t.Fatalf("%s: %v", p.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestVettoolEndToEnd builds the binary, fabricates a module with the
// PR-3 map-order float-sum bug, and checks that `go vet -vettool`
// fails on it with a floatmaprange finding.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "tastervet")
	build := exec.Command(goTool, "build", "-o", vettool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tastervet: %v\n%s", err, out)
	}

	// A scratch module that masquerades as this one, so the bad
	// package classifies as deterministic.
	mod := filepath.Join(tmp, "mod")
	pkg := filepath.Join(mod, "internal", "report")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module tasterschoice\n\ngo 1.22\n")
	writeFile(t, filepath.Join(pkg, "bad.go"), `package report

// Sum reintroduces the map-iteration-order float accumulation bug.
func Sum(d map[string]float64) float64 {
	total := 0.0
	for _, v := range d {
		total += v
	}
	return total
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	err = vet.Run()
	if err == nil {
		t.Fatalf("go vet -vettool passed on the buggy module; output:\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("floatmaprange")) ||
		!bytes.Contains(out.Bytes(), []byte("float accumulation into total")) {
		t.Fatalf("go vet failed but without the expected floatmaprange finding; output:\n%s", out.String())
	}
}

// TestVettoolCleanModule is the converse: the sorted-keys idiom passes
// under go vet -vettool.
func TestVettoolCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "tastervet")
	build := exec.Command(goTool, "build", "-o", vettool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tastervet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	pkg := filepath.Join(mod, "internal", "report")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module tasterschoice\n\ngo 1.22\n")
	writeFile(t, filepath.Join(pkg, "good.go"), `package report

import "sort"

// Sum accumulates over sorted keys: bit-identical across runs.
func Sum(d map[string]float64) float64 {
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += d[k]
	}
	return total
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on the clean module: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
