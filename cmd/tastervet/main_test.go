package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"tasterschoice/internal/lint"
)

// TestTreeClean is the gate the CI lint job enforces: the suite must
// run clean on the repository's own packages. Test binaries run from
// their package directory, so the module-wide pattern (not ./...) is
// used.
func TestTreeClean(t *testing.T) {
	pkgs, err := lint.Load(".", []string{"tasterschoice/internal/..."}, "", false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	store := lint.NewFactStore()
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.ImportPath, terr)
		}
		run := lint.All()
		if p.FactsOnly {
			run = nil
		}
		diags, err := lint.RunAnalyzersFacts(p.Fset, p.Files, p.Pkg, p.Info, run, store)
		if err != nil {
			t.Fatalf("%s: %v", p.ImportPath, err)
		}
		if p.FactsOnly {
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestVettoolEndToEnd builds the binary, fabricates a module with the
// PR-3 map-order float-sum bug, and checks that `go vet -vettool`
// fails on it with a floatmaprange finding.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "tastervet")
	build := exec.Command(goTool, "build", "-o", vettool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tastervet: %v\n%s", err, out)
	}

	// A scratch module that masquerades as this one, so the bad
	// package classifies as deterministic.
	mod := filepath.Join(tmp, "mod")
	pkg := filepath.Join(mod, "internal", "report")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module tasterschoice\n\ngo 1.22\n")
	writeFile(t, filepath.Join(pkg, "bad.go"), `package report

// Sum reintroduces the map-iteration-order float accumulation bug.
func Sum(d map[string]float64) float64 {
	total := 0.0
	for _, v := range d {
		total += v
	}
	return total
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	err = vet.Run()
	if err == nil {
		t.Fatalf("go vet -vettool passed on the buggy module; output:\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("floatmaprange")) ||
		!bytes.Contains(out.Bytes(), []byte("float accumulation into total")) {
		t.Fatalf("go vet failed but without the expected floatmaprange finding; output:\n%s", out.String())
	}
}

// TestVettoolCleanModule is the converse: the sorted-keys idiom passes
// under go vet -vettool.
func TestVettoolCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "tastervet")
	build := exec.Command(goTool, "build", "-o", vettool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tastervet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	pkg := filepath.Join(mod, "internal", "report")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module tasterschoice\n\ngo 1.22\n")
	writeFile(t, filepath.Join(pkg, "good.go"), `package report

import "sort"

// Sum accumulates over sorted keys: bit-identical across runs.
func Sum(d map[string]float64) float64 {
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += d[k]
	}
	return total
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on the clean module: %v\n%s", err, out)
	}
}

// TestVettoolFactRoundTrip is the regression surface for the fact
// store's vetx serialization: a two-package scratch module where an
// edge package legally reads the wall clock and an engine package
// calls it. Under go vet -vettool each package is analyzed in a
// separate process, so the engine-side escalation finding can only
// exist if the edge package's facts survived the trip through the
// vetx file go vet handed across.
func TestVettoolFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "tastervet")
	build := exec.Command(goTool, "build", "-o", vettool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tastervet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	edge := filepath.Join(mod, "internal", "feedsync")
	engine := filepath.Join(mod, "internal", "dnsblplane")
	for _, dir := range []string{edge, engine} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module tasterschoice\n\ngo 1.22\n")
	// The edge package: time.Now is legal here, but the exported fact
	// marks SlowNow wallclock-tainted. Jitter adds a level of helper
	// indirection so the fixpoint, not just the leaf scan, is what the
	// engine side depends on.
	writeFile(t, filepath.Join(edge, "dep.go"), `package feedsync

import "time"

func SlowNow() time.Time { return time.Now() }

func Jitter() time.Duration { return time.Since(SlowNow()) }
`)
	// The engine package: no time import anywhere — the only way the
	// analyzer can flag these lines is through imported facts.
	writeFile(t, filepath.Join(engine, "plane.go"), `package dnsblplane

import "tasterschoice/internal/feedsync"

func Stamp() int64 { return feedsync.SlowNow().UnixNano() }

func Jittered() int64 { return int64(feedsync.Jitter()) }
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	err = vet.Run()
	if err == nil {
		t.Fatalf("go vet -vettool passed; the cross-package escalation was lost; output:\n%s", out.String())
	}
	for _, want := range []string{
		"feedsync.SlowNow transitively reads the wall clock",
		"feedsync.Jitter transitively reads the wall clock",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Errorf("go vet output missing %q; output:\n%s", want, out.String())
		}
	}
	// The edge package itself must stay clean: the taint is a fact, not
	// a finding, at its own tier.
	if bytes.Contains(out.Bytes(), []byte("dep.go")) {
		t.Errorf("go vet reported findings in the edge package; output:\n%s", out.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
