package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"tasterschoice/internal/lint"
)

// The go vet -vettool protocol: for each package unit, cmd/go writes a
// JSON config describing the already-planned build (source files,
// import map, export-data files of every dependency) and invokes the
// tool with the config path as its sole argument. The tool
// type-checks the unit, prints findings to stderr, writes its facts
// file, and signals findings through a non-zero exit.
//
// The facts file (VetxOutput) is the interprocedural propagation
// channel: a unit's computed function facts serialize into it, and
// cmd/go hands every dependency's file back via PackageVetx when a
// dependent unit runs — the same modular path x/tools analysis facts
// ride. Only the module's own packages carry facts; stdlib and other
// dependency units (VetxOnly) write an empty file without even being
// parsed.

// vetConfig mirrors the fields of cmd/go's vet config (a stable
// protocol; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// factBearing reports whether a unit's import path is one this module
// computes facts for.
func factBearing(importPath string) bool {
	return strings.HasPrefix(importPath, "tasterschoice/")
}

// runUnitchecker analyzes one vet unit. Returns the exit code: 0 clean,
// 1 internal failure, 2 findings (any non-zero makes go vet report).
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tastervet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Units outside the module carry no facts and get no diagnostics:
	// satisfy cmd/go with an empty facts file, skip parsing entirely.
	if cfg.VetxOnly && !factBearing(cfg.ImportPath) {
		return writeVetx(&cfg, nil)
	}

	// Merge the facts of every dependency cmd/go planned for us. A
	// missing or foreign-format file contributes nothing (facts degrade
	// to "clean", never to a false finding).
	store := lint.NewFactStore()
	for path, vetxFile := range cfg.PackageVetx {
		if !factBearing(path) {
			continue
		}
		raw, err := os.ReadFile(vetxFile)
		if err != nil {
			continue
		}
		if err := store.ImportPackage(path, raw); err != nil {
			fmt.Fprintf(os.Stderr, "tastervet: %v\n", err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, nil)
			}
			fmt.Fprintln(os.Stderr, "tastervet:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var typeErr error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil || pkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, nil)
		}
		fmt.Fprintf(os.Stderr, "tastervet: %s: %v\n", cfg.ImportPath, typeErr)
		return 1
	}

	// A VetxOnly unit wants facts, not diagnostics: run the
	// interprocedural computation with no analyzers attached.
	analyzers := lint.All()
	if cfg.VetxOnly {
		analyzers = nil
	}
	diags, err := lint.RunAnalyzersFacts(fset, files, pkg, info, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 1
	}
	if code := writeVetx(&cfg, store); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx leaves the facts output cmd/go expects: the unit's
// serialized facts when store is non-nil, an empty file otherwise.
// Returns 0 on success, 1 on failure.
func writeVetx(cfg *vetConfig, store *lint.FactStore) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	var payload []byte
	if store != nil {
		payload = store.ExportPackage(cfg.ImportPath)
	}
	if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 1
	}
	return 0
}
