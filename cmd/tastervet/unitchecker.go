package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"tasterschoice/internal/lint"
)

// The go vet -vettool protocol: for each package unit, cmd/go writes a
// JSON config describing the already-planned build (source files,
// import map, export-data files of every dependency) and invokes the
// tool with the config path as its sole argument. The tool
// type-checks the unit, prints findings to stderr, writes its facts
// file, and signals findings through a non-zero exit.
//
// This suite exports no cross-package facts, so dependency units
// (VetxOnly: cmd/go wants facts, not diagnostics) are satisfied by an
// empty facts file without even parsing the source — which also means
// stdlib/cgo dependencies never need to be re-type-checked here.

// vetConfig mirrors the fields of cmd/go's vet config (a stable
// protocol; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one vet unit. Returns the exit code: 0 clean,
// 1 internal failure, 2 findings (any non-zero makes go vet report).
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tastervet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts first: always leave the output cmd/go expects, even on the
	// fast path.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tastervet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "tastervet:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var typeErr error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil || pkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tastervet: %s: %v\n", cfg.ImportPath, typeErr)
		return 1
	}

	diags, err := lint.RunAnalyzers(fset, files, pkg, info, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastervet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
