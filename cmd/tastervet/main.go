// Command tastervet is the project's custom static-analysis
// multichecker: nine analyzers (floatmaprange, wallclock, globalrand,
// nilguard, ctxblocking, stringalloc, publishedmut, lockscope,
// goroleak) that mechanically enforce the determinism, clock, RNG,
// observability and concurrency contracts MECHANISMS.md documents.
// The suite is interprocedural: per-function facts (clock/RNG taint,
// blocking, lifecycle tracking, mutation masks) flow through a
// package-local call graph and across package boundaries.
//
// Two modes:
//
//	tastervet [-tags build-tags] [-tests] [-run names] [packages]
//	    Standalone: list, parse and type-check the packages itself
//	    (default ./...) and print findings. Exit status 1 when any
//	    finding survives the //lint:allow allowlist. Packages are
//	    analyzed in dependency order through one shared fact store.
//
//	go vet -vettool=$(which tastervet) ./...
//	    Unit-checker: speak cmd/go's vet protocol (-V=full version
//	    query, -flags enumeration, then one .cfg file per package),
//	    so findings integrate with go vet's caching and output.
//	    Facts ride the .vetx files the driver passes between units.
//
// Suppressions are explicit and reasoned:
//
//	conn.SetDeadline(...) //lint:allow wallclock -- socket deadline, not simulation time
//
// A malformed or unknown-analyzer directive is itself reported.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]

	// cmd/go's vet protocol probes come before anything else: a
	// version query (for its action cache key) and a flag listing.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer flags are exposed through go vet.
		fmt.Println("[]")
		return
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(runUnitchecker(args[n-1]))
	}
	os.Exit(runStandalone(args))
}

// printVersion replicates the output shape cmd/go expects from a
// -V=full probe (the same minimal contract x/tools' unitchecker
// implements): the executable path, the word "version", and a build
// identifier derived from the binary's own content hash.
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(progname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}
