package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"tasterschoice/internal/distsweep"
	"tasterschoice/internal/mailflow"
)

var listenLine = regexp.MustCompile(`coordinating \d+ seeds on (\S+)`)

// TestSweepdEndToEnd drives the real flag-to-exit-code path for both
// modes in one process: a coordinator on an ephemeral port, two worker
// processes' worth of sessions, and a final table byte-identical to
// the single-process cmd/sweep run over the same seeds.
func TestSweepdEndToEnd(t *testing.T) {
	const seeds = 3

	// Single-process reference via the shared core.
	var local bytes.Buffer
	failed, err := distsweep.RunLocal(context.Background(),
		distsweep.Config{Seeds: seeds, Small: true, Workers: seeds},
		distsweep.ScenarioRunner(true, mailflow.Metrics{}, nil), &local)
	if err != nil || failed != 0 {
		t.Fatalf("reference run: failed=%d err=%v", failed, err)
	}

	// Coordinator: stderr goes through a pipe so the test can learn the
	// ephemeral address from the "coordinating ... on" status line.
	pr, pw := io.Pipe()
	var stdout bytes.Buffer
	coordDone := make(chan int, 1)
	go func() {
		code := run([]string{"-listen", "127.0.0.1:0", "-seeds", "3", "-lease-timeout", "5s"},
			&stdout, pw)
		pw.Close()
		coordDone <- code
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		io.Copy(io.Discard, pr) //nolint:errcheck // drain so the coordinator never blocks on stderr
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	// Two workers, each with two sessions, with real (small) scenarios.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var werr bytes.Buffer
			codes[i] = run([]string{"-worker", "-addr", addr, "-id", "w" + string(rune('a'+i)),
				"-parallel", "2"}, io.Discard, &werr)
			if codes[i] != 0 {
				t.Errorf("worker %d exit %d: %s", i, codes[i], werr.String())
			}
		}(i)
	}

	select {
	case code := <-coordDone:
		if code != 0 {
			t.Fatalf("coordinator exit %d", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never finished")
	}
	wg.Wait()

	if !bytes.Equal(stdout.Bytes(), local.Bytes()) {
		t.Fatalf("sweepd table differs from single-process run:\n--- local ---\n%s\n--- sweepd ---\n%s",
			local.String(), stdout.String())
	}
}

// TestSweepdBadFlags pins the usage exit code.
func TestSweepdBadFlags(t *testing.T) {
	var errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, io.Discard, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "flag") {
		t.Fatalf("usage output missing: %s", errw.String())
	}
}

// TestSweepdCoordinatorBadListen pins the failure path for an
// unbindable address.
func TestSweepdCoordinatorBadListen(t *testing.T) {
	var errw bytes.Buffer
	if code := run([]string{"-listen", "256.0.0.1:1"}, io.Discard, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}
