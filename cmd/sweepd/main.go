// Command sweepd scales the seed sweep across processes. Run one
// coordinator and any number of workers (on the same host or not):
//
//	sweepd -seeds 50 -listen 127.0.0.1:7077 -checkpoint sweep.ckpt
//	sweepd -worker -addr 127.0.0.1:7077 -parallel 4   # repeat per host
//
// The coordinator farms seeds to workers under heartbeat-backed
// leases, checkpoints every completed seed through the crash-safe
// store, and prints the same metrics table a single-process
// `sweep -seeds 50` would — byte for byte. Kill a worker and its seed
// is re-dispatched; kill the coordinator and a restart with the same
// flags resumes from the checkpoint without re-running or
// double-counting finished seeds; a straggler's seed can be stolen
// (-steal-after) with duplicate results reconciled byte-for-byte.
// Status and progress go to stderr; stdout carries only the table.
//
// Workers are supervised: a worker connection that fails restarts
// with backoff (-restarts bounds it), and -parallel runs several
// protocol sessions so one process saturates several cores.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"tasterschoice/internal/checkpoint"
	"tasterschoice/internal/distsweep"
	"tasterschoice/internal/lifecycle"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/obs"
	"tasterschoice/internal/resilient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests drive the full
// flag-to-exit-code path in process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	worker := fs.Bool("worker", false, "run as a worker instead of the coordinator")
	listen := fs.String("listen", "127.0.0.1:7077", "coordinator: address to serve workers on")
	seeds := fs.Int("seeds", 10, "coordinator: number of seeds to run")
	small := fs.Bool("small", true, "coordinator: use the reduced scenario (workers follow via the handshake)")
	ckpt := fs.String("checkpoint", "", "coordinator: checkpoint file; a restart with the same flags resumes")
	leaseTimeout := fs.Duration("lease-timeout", 10*time.Second, "coordinator: revoke a lease after this long without a heartbeat")
	stealAfter := fs.Duration("steal-after", 0, "coordinator: duplicate-dispatch a straggler's seed after this long (0: never)")
	grace := fs.Duration("grace", 5*time.Second, "coordinator: drain timeout once the sweep ends")
	addr := fs.String("addr", "127.0.0.1:7077", "worker: coordinator address to dial")
	id := fs.String("id", "", "worker: name used in leases and coordinator logs (default host-pid)")
	parallel := fs.Int("parallel", 2, "worker: concurrent protocol sessions (seeds in flight)")
	retryFailed := fs.Int("retry-failed", 0, "worker: re-run a transiently failed seed up to N extra times before reporting it failed")
	restarts := fs.Int("restarts", 5, "worker: restart budget per session after failures")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address (empty: disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(4096, nil)
		ms, err := obs.Serve(*metricsAddr, reg, tracer)
		if err != nil {
			fmt.Fprintf(stderr, "sweepd: %v\n", err)
			return 1
		}
		defer ms.Close()
		fmt.Fprintf(stderr, "sweepd: metrics on http://%s/metrics\n", ms.Addr())
	}

	if *worker {
		return runWorker(ctx, stderr, workerOpts{
			addr: *addr, id: *id, parallel: *parallel,
			retryFailed: *retryFailed, restarts: *restarts,
			reg: reg, tracer: tracer,
		})
	}
	return runCoordinator(ctx, stdout, stderr, coordOpts{
		listen: *listen, seeds: *seeds, small: *small, ckpt: *ckpt,
		leaseTimeout: *leaseTimeout, stealAfter: *stealAfter, grace: *grace,
		reg: reg,
	})
}

type coordOpts struct {
	listen       string
	seeds        int
	small        bool
	ckpt         string
	leaseTimeout time.Duration
	stealAfter   time.Duration
	grace        time.Duration
	reg          *obs.Registry
}

func runCoordinator(ctx context.Context, stdout, stderr io.Writer, o coordOpts) int {
	cfg := distsweep.Config{
		Seeds:          o.seeds,
		Small:          o.small,
		CheckpointPath: o.ckpt,
		Errw:           stderr,
	}
	if o.reg != nil {
		cfg.StoreMetrics = checkpoint.NewMetrics(o.reg, "sweepd")
	}
	coord, err := distsweep.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 1
	}
	coord.LeaseTimeout = o.leaseTimeout
	coord.StealAfter = o.stealAfter
	if o.reg != nil {
		coord.Metrics = distsweep.NewCoordinatorMetrics(o.reg)
	}
	laddr, err := coord.Listen(o.listen)
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "sweepd: coordinating %d seeds on %s\n", o.seeds, laddr)

	if err := coord.WaitContext(ctx); err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		coord.Close()
		return 1
	}
	// Drain: late workers get DONE and exit cleanly.
	dctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := coord.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "sweepd: drain: %v\n", err)
	}
	if err := coord.WriteReport(stdout); err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 1
	}
	if failed := coord.Failed(); failed > 0 {
		fmt.Fprintf(stderr, "failed seeds: %d\n", failed)
		return 1
	}
	return 0
}

type workerOpts struct {
	addr        string
	id          string
	parallel    int
	retryFailed int
	restarts    int
	reg         *obs.Registry
	tracer      *obs.Tracer
}

func runWorker(ctx context.Context, stderr io.Writer, o workerOpts) int {
	id := o.id
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = host + "-" + strconv.Itoa(os.Getpid())
	}
	if o.parallel < 1 {
		o.parallel = 1
	}
	// One mailflow metrics set is shared across sessions, matching how
	// cmd/sweep aggregates across its in-process workers.
	var m mailflow.Metrics
	if o.reg != nil {
		m = mailflow.NewMetrics(o.reg)
	}
	fmt.Fprintf(stderr, "sweepd: worker %s dialing %s (%d sessions)\n", id, o.addr, o.parallel)

	g := lifecycle.NewGroup(ctx)
	for i := 0; i < o.parallel; i++ {
		sid := id + "/" + strconv.Itoa(i)
		w := &distsweep.Worker{
			Addr: o.addr,
			ID:   sid,
			NewRunner: func(small bool) distsweep.SeedRunner {
				return distsweep.RetryingRunner(
					distsweep.ScenarioRunner(small, m, o.tracer), o.retryFailed, resilient.Backoff{}, nil)
			},
			Metrics: distsweep.NewWorkerMetrics(o.reg, sid),
		}
		g.Supervise(sid, lifecycle.Restart{Max: o.restarts}, w.Run)
	}
	if err := g.Wait(); err != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 1
	}
	return 0
}
