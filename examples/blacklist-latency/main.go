// blacklist-latency sweeps a blacklist's listing latency and listing
// probabilities, showing the operational trade-off the paper's timing
// analysis exposes: a slow blacklist still covers the same domains but
// lists them after spammers have already monetized their campaigns.
package main

import (
	"fmt"
	"os"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
)

func main() {
	type sweep struct {
		name         string
		latencyHours float64
		loudProb     float64
	}
	sweeps := []sweep{
		{"instant", 0.5, 0.97},
		{"fast (paper dbl)", 7, 0.97},
		{"slow", 48, 0.97},
		{"glacial", 168, 0.97},
		{"fast-but-blind", 7, 0.50},
	}

	rows := make([][]string, 0, len(sweeps))
	for _, sw := range sweeps {
		scen := simulate.Small(77)
		scen.Collection.DBL.LatencyMedianHours = sw.latencyHours
		scen.Collection.DBL.ListProbLoud = sw.loudProb
		ds, err := scen.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blacklist-latency: %v\n", err)
			os.Exit(1)
		}
		// Tagged-domain coverage of the modified dbl.
		tagged := analysis.Coverage(ds, analysis.ClassTagged)
		var dblTotal, union int
		seen := map[string]bool{}
		for _, r := range tagged {
			if r.Name == "dbl" {
				dblTotal = r.Total
			}
			for d := range analysis.FeedDomains(ds, r.Name, analysis.ClassTagged) {
				if !seen[d] {
					seen[d] = true
					union++
				}
			}
		}
		// First-appearance latency vs the faster feeds.
		timing := analysis.FirstAppearance(ds,
			[]string{"Hu", "dbl", "mx1", "mx2", "Ac1"})
		var median float64
		for _, r := range timing {
			if r.Name == "dbl" {
				median = r.Summary.Median
			}
		}
		rows = append(rows, []string{
			sw.name,
			fmt.Sprintf("%.0fh", sw.latencyHours),
			fmt.Sprintf("%.0f%%", sw.loudProb*100),
			fmt.Sprintf("%.0f%%", 100*float64(dblTotal)/float64(union)),
			fmt.Sprintf("%.1fh", median),
		})
	}
	fmt.Println("How listing latency and listing probability shape a blacklist:")
	fmt.Println(report.Table(
		[]string{"Variant", "Latency", "ListProb", "TaggedCov", "MedianOnset"}, rows))
	fmt.Println("Coverage barely moves with latency; onset does. A blacklist that")
	fmt.Println("lists a day late covers the same spam but after the campaign peak.")
}
