// proportionality demonstrates the paper's §4.3 machinery on feeds you
// build yourself: construct two observation streams with the feeds
// package, then compare their empirical domain-volume distributions
// with variation distance and Kendall's tau-b.
//
// It shows why one cannot extrapolate "X% of spam advertises Y" from a
// single feed: two collectors watching the same campaigns at different
// vantage points disagree wildly on relative volumes.
package main

import (
	"fmt"
	"time"

	"tasterschoice/internal/domain"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/randutil"
	"tasterschoice/internal/simclock"
	"tasterschoice/internal/stats"
)

func main() {
	rng := randutil.New(42)
	window := simclock.PaperWindow()

	// Ground truth: five campaigns with very different true volumes.
	campaigns := []struct {
		domain domain.Name
		volume int
	}{
		{"megapills.com", 100000},
		{"bigwatches.net", 30000},
		{"midsoft.org", 10000},
		{"quietmeds.info", 3000},
		{"tinyreplica.biz", 500},
	}

	// Collector A: even 1% sampling of everything (an "ideal" feed).
	even := feeds.New("even", feeds.KindMXHoneypot, true, false)
	// Collector B: biased — it happens to sit on the lists of the
	// small campaigns but barely sees the big ones (a badly seeded
	// honey account feed).
	biased := feeds.New("biased", feeds.KindHoneyAccount, true, false)

	biasFor := map[domain.Name]float64{
		"megapills.com": 0.0002, "bigwatches.net": 0.001,
		"midsoft.org": 0.01, "quietmeds.info": 0.05, "tinyreplica.biz": 0.3,
	}
	for _, c := range campaigns {
		for i := 0; i < c.volume; i++ {
			t := window.At(rng.Float64())
			if rng.Bool(0.01) {
				even.Observe(t, c.domain, "")
			}
			if rng.Bool(biasFor[c.domain]) {
				biased.Observe(t, c.domain, "")
			}
		}
	}

	truth := map[string]int64{}
	for _, c := range campaigns {
		truth[string(c.domain)] = int64(c.volume)
	}
	truthDist := stats.NewDistFromCounts(truth)
	evenDist := stats.NewDistFromCounts(even.Counts())
	biasedDist := stats.NewDistFromCounts(biased.Counts())

	fmt.Println("True campaign volumes vs what each collector records:")
	fmt.Printf("%-18s %10s %10s %10s\n", "domain", "truth", "even", "biased")
	for _, c := range campaigns {
		e, _ := even.Stat(c.domain)
		b, _ := biased.Stat(c.domain)
		fmt.Printf("%-18s %10d %10d %10d\n", c.domain, c.volume, e.Count, b.Count)
	}
	fmt.Println()

	report := func(name string, d stats.Dist) {
		delta := stats.VariationDistance(truthDist, d)
		tau, n, ok := stats.KendallTauB(truthDist, d)
		fmt.Printf("%-8s variation distance to truth: %.3f", name, delta)
		if ok {
			fmt.Printf("   Kendall tau-b: %+.2f (n=%d)", tau, n)
		}
		fmt.Println()
	}
	report("even", evenDist)
	report("biased", biasedDist)

	fmt.Println()
	fmt.Println("The even sampler preserves both ranks and proportions; the biased")
	fmt.Println("collector inverts the ranking entirely. Its own top domain is the")
	fmt.Println("ecosystem's smallest campaign — the paper's warning about")
	fmt.Println("extrapolating prevalence from a single feed, in miniature.")
	_ = time.Now // keep time imported if the example grows
}
