// mxhoneypot runs the full network path of an MX honeypot feed: a real
// SMTP server listening on localhost, a bot-like client that builds a
// brute-force address list (which happens to include the honeypot's
// domain — that is the only reason honeypots receive anything), renders
// spam messages for a generated campaign schedule, and delivers them
// over TCP. The server-side ingester reduces received messages to a
// registered-domain feed, exactly like a production feed operator.
package main

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"tasterschoice/internal/addrlist"
	"tasterschoice/internal/domain"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/mailmsg"
	"tasterschoice/internal/randutil"
	"tasterschoice/internal/simclock"
	"tasterschoice/internal/smtpd"
)

const honeypotDomain = "quiet-old-domain.com"

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mxhoneypot: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// --- The feed operator's side: SMTP sink + ingester. -----------
	feed := feeds.New("mx-demo", feeds.KindMXHoneypot, true, true)
	ing := feeds.NewIngester(feed)
	var mu sync.Mutex
	srv := smtpd.NewServer("mx."+honeypotDomain, func(env smtpd.Envelope) {
		m, err := mailmsg.Parse(strings.NewReader(string(env.Data)))
		if err != nil {
			return
		}
		mu.Lock()
		ing.IngestMessage(m, env.ReceivedAt)
		mu.Unlock()
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("MX honeypot for %s listening on %s\n", honeypotDomain, addr)

	// --- The spammer's side. ----------------------------------------
	// A tiny world supplies campaigns and domains to advertise.
	cfg := ecosystem.DefaultConfig(7)
	cfg.Scale = 0.02
	cfg.BenignDomains = 500
	cfg.AlexaTopN = 200
	cfg.ODPDomains = 100
	cfg.ObscureRegistered = 50
	cfg.WebOnlyDomains = 20
	cfg.OtherGoodsCampaigns = 30
	cfg.RXAffiliates = 40
	cfg.RXLoudAffiliates = 4
	world, err := ecosystem.Generate(cfg)
	if err != nil {
		return err
	}

	// Brute force: popular usernames at "every domain with an MX" —
	// the honeypot's domain is just one more .com in the list.
	targets := addrlist.BruteForce([]domain.Name{
		honeypotDomain, "some-company.com", "another-startup.net",
	}, 60)
	var honeypotRcpts []string
	for _, a := range targets.Addresses {
		if strings.HasSuffix(a, "@"+honeypotDomain) {
			honeypotRcpts = append(honeypotRcpts, a)
		}
	}
	fmt.Printf("brute-force list: %d addresses, %d at the honeypot\n",
		targets.Len(), len(honeypotRcpts))

	// Deliver a few messages per loud campaign over real SMTP.
	rng := randutil.New(99)
	client, err := smtpd.Dial(addr.String())
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Hello("bot.infected.example"); err != nil {
		return err
	}
	sent := 0
	for i := range world.Campaigns {
		c := &world.Campaigns[i]
		if c.Class != ecosystem.ClassLoud || sent >= 120 {
			continue
		}
		for _, slot := range c.Domains {
			rcpt := honeypotRcpts[rng.Intn(len(honeypotRcpts))]
			when := simclock.PaperWindow().Clamp(slot.Start)
			var chaff domain.Name
			if rng.Bool(0.2) {
				chaff = world.Benign[rng.Intn(len(world.Benign))].Name
			}
			m := mailflow.RenderMessage(rng, world, c, slot, chaff, when, rcpt)
			if err := client.Send(m.From, []string{rcpt}, m.Bytes()); err != nil {
				return fmt.Errorf("send: %w", err)
			}
			sent++
		}
	}
	if err := client.Quit(); err != nil {
		return err
	}

	// --- What the feed saw. -----------------------------------------
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\ndelivered %d messages over SMTP; feed: %s\n", sent, feed)
	fmt.Println("top observed domains:")
	type row struct {
		d domain.Name
		c int64
	}
	var rows []row
	feed.Each(func(d domain.Name, s feeds.DomainStat) {
		rows = append(rows, row{d, s.Count})
	})
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].c > rows[i].c {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for i, r := range rows {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-30s %4d samples\n", r.d, r.c)
	}
	return nil
}
