// mta-pipeline runs the complete operational stack end to end over
// real sockets: a blacklist collected by the simulation is served as a
// DNSBL zone over UDP; a filtering MTA accepts mail over SMTP, reduces
// each message's URLs to registered domains, queries the DNSBL for
// every domain, and rejects listed mail; a bot-like sender delivers a
// mixed stream of campaign spam and legitimate mail.
//
// The feed you plug into the MTA decides what gets stopped — the
// paper's coverage and purity findings as a running mail system.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/mailmsg"
	"tasterschoice/internal/mta"
	"tasterschoice/internal/randutil"
	"tasterschoice/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mta-pipeline: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Collect feeds from the simulated ecosystem.
	scen := simulate.Small(99)
	world, err := ecosystem.Generate(scen.Ecosystem)
	if err != nil {
		return err
	}
	res, err := mailflow.New(world, scen.Collection).Run()
	if err != nil {
		return err
	}

	// Serve the collected dbl feed over DNS/UDP.
	blacklist := res.Feed("dbl")
	blServer := dnsbl.NewServer("dbl.example", dnsbl.FeedZone{Feed: blacklist})
	blAddr, err := blServer.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer blServer.Close()
	fmt.Printf("DNSBL zone dbl.example (%d domains) on udp://%s\n",
		blacklist.Unique(), blAddr)

	// The filtering MTA, querying the DNSBL per domain.
	client := dnsbl.NewClient(blAddr.String(), "dbl.example", 4)
	client.Timeout = 3 * time.Second
	var mu sync.Mutex
	inbox := 0
	server := mta.NewServer("mail.provider.example", client, func(d mta.Decision) {
		mu.Lock()
		inbox++
		mu.Unlock()
	})
	server.RejectSpam = true
	mtaAddr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Printf("filtering MTA on tcp://%s\n\n", mtaAddr)

	// A mixed message stream: campaign spam plus legitimate mail.
	rng := randutil.New(17)
	var msgs []*mailmsg.Message
	spamSent := 0
	for i := range world.Campaigns {
		c := &world.Campaigns[i]
		if c.Class == ecosystem.ClassWebOnly || spamSent >= 150 {
			continue
		}
		slot := c.Domains[rng.Intn(len(c.Domains))]
		msgs = append(msgs, mailflow.RenderMessage(rng, world, c, slot, "",
			slot.Start, "user@provider.example"))
		spamSent++
	}
	hamSent := 60
	for i := 0; i < hamSent; i++ {
		b := world.Benign[rng.Intn(len(world.Benign))]
		msgs = append(msgs, &mailmsg.Message{
			From: "colleague@example.org", To: "user@provider.example",
			Subject: "fyi",
			Body:    fmt.Sprintf("interesting read: %s", ecosystem.ChaffURL(b.Name)),
		})
	}

	if err := mta.SendAll(mtaAddr.String(), msgs); err != nil {
		return err
	}
	if !server.WaitReceived(int64(len(msgs)), 10*time.Second) {
		return fmt.Errorf("MTA processed %d of %d", server.Stats().Received, len(msgs))
	}

	st := server.Stats()
	fmt.Printf("sent %d messages (%d spam, %d ham) over SMTP\n",
		len(msgs), spamSent, hamSent)
	fmt.Printf("MTA: %d received, %d rejected, %d delivered (%d lookup errors)\n",
		st.Received, st.Rejected, st.Delivered, st.Errors)
	fmt.Printf("DNSBL answered %d queries, %d listed\n", blServer.Queries(), blServer.Hits())
	fmt.Printf("spam catch rate with the dbl feed: %.0f%%\n",
		100*float64(st.Rejected)/float64(spamSent))
	fmt.Println("\nSwap in a different feed (uribl, or an MX honeypot's output) and")
	fmt.Println("the same pipeline stops a very different fraction of the stream —")
	fmt.Println("the paper's point, in production form.")
	return nil
}
