// dnsbl-filter demonstrates the operational consequence of feed choice:
// it serves two collected blacklists (dbl and uribl) and one honeypot
// feed over the DNSBL protocol, then filters the same stream of spam
// and legitimate mail through each, measuring catch rate and false
// positives per feed — the paper's coverage and purity findings turned
// into their production effect.
package main

import (
	"fmt"
	"os"
	"time"

	"tasterschoice/internal/dnsbl"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/mailfilter"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/mailmsg"
	"tasterschoice/internal/randutil"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dnsbl-filter: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Collect the feeds.
	scen := simulate.Small(321)
	world, err := ecosystem.Generate(scen.Ecosystem)
	if err != nil {
		return err
	}
	res, err := mailflow.New(world, scen.Collection).Run()
	if err != nil {
		return err
	}

	// Build a labeled message stream: spam rendered from real
	// campaigns plus ham naming benign domains.
	rng := randutil.New(5)
	var stream []sample
	for i := range world.Campaigns {
		c := &world.Campaigns[i]
		if c.Class == ecosystem.ClassWebOnly || len(stream) >= 600 {
			continue
		}
		slot := c.Domains[rng.Intn(len(c.Domains))]
		m := mailflow.RenderMessage(rng, world, c, slot, "", slot.Start, "user@webmail.example")
		stream = append(stream, sample{body: m.Body, spam: true})
	}
	for i := 0; i < 300; i++ {
		b := world.Benign[rng.Intn(len(world.Benign))]
		stream = append(stream, sample{
			body: fmt.Sprintf("newsletter: read more at %s", ecosystem.ChaffURL(b.Name)),
			spam: false,
		})
	}

	// Serve each candidate feed as a DNSBL zone and filter the stream
	// through it — real UDP round-trips for every uncached domain.
	rows := make([][]string, 0, 3)
	for _, feedName := range []string{"dbl", "uribl", "mx1"} {
		feed := res.Feed(feedName)
		zone := feedName + ".bl.test"
		srv := dnsbl.NewServer(zone, dnsbl.FeedZone{Feed: feed})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		client := dnsbl.NewClient(addr.String(), zone, 11)
		client.Timeout = 3 * time.Second
		filter := mailfilter.New(client)

		var eval mailfilter.Eval
		for _, s := range stream {
			v, err := filter.Classify(&mailmsg.Message{Body: s.body})
			if err != nil {
				srv.Close()
				return err
			}
			eval.Add(s.spam, v.Spam)
		}
		rows = append(rows, []string{
			feedName,
			fmt.Sprintf("%d", feed.Unique()),
			fmt.Sprintf("%.1f%%", eval.CatchRate()*100),
			fmt.Sprintf("%.2f%%", eval.FalsePositiveRate()*100),
			fmt.Sprintf("%d", filter.Lookups),
			fmt.Sprintf("%d", srv.Queries()),
		})
		srv.Close()
	}

	fmt.Printf("filtered %d messages (%d spam) through three DNSBL zones:\n\n",
		len(stream), countSpam(stream))
	fmt.Println(report.Table(
		[]string{"Feed", "Domains", "Catch", "FalsePos", "Lookups", "UDP queries"}, rows))
	fmt.Println("The blacklists catch far more spam at almost no false-positive cost; the")
	fmt.Println("honeypot feed catches only the loud campaigns it could see, and its")
	fmt.Println("chaff contamination turns into real false positives.")
	return nil
}

// sample is one labeled message in the evaluation stream.
type sample struct {
	body string
	spam bool
}

func countSpam(stream []sample) int {
	n := 0
	for _, s := range stream {
		if s.spam {
			n++
		}
	}
	return n
}
