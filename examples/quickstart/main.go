// Quickstart: run a reduced Taster's Choice scenario end to end and
// print the headline findings — which feed wins on which question.
package main

import (
	"fmt"
	"os"

	"tasterschoice/internal/core"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
)

func main() {
	// A scenario is fully determined by its seed: same seed, same
	// feeds, same numbers.
	ds, err := simulate.Small(2010).Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	study := core.NewStudy(ds)

	fmt.Println("Ten spam feeds, one synthetic ecosystem, three months:")
	fmt.Println()
	fmt.Println(report.FeedSummaryTable(study.Table1()))

	// The paper's central surprise: the smallest feed by volume has
	// the greatest coverage.
	_, _, tagged := study.Table3()
	var hu, best int
	var bestName string
	for _, r := range tagged {
		if r.Name == "Hu" {
			hu = r.Total
		} else if r.Total > best {
			best, bestName = r.Total, r.Name
		}
	}
	fmt.Printf("Hu contributes %d tagged domains — more than any other feed (next: %s with %d)\n\n",
		hu, bestName, best)

	fmt.Println("Which feed should you use? Depends on the question:")
	for _, q := range []core.Question{
		core.QCoverage, core.QPurity, core.QOnset, core.QProportionality,
	} {
		ranked := study.Recommend(q)
		if len(ranked) == 0 {
			continue
		}
		fmt.Printf("  %-20s -> %-5s (%s)\n", q, ranked[0].Feed, ranked[0].Note)
	}
}
