// httpcrawl labels a feed the way the paper's measurement pipeline
// did: take the URLs a feed received, fetch every one over real HTTP
// with a pool of concurrent crawler workers, follow redirects to the
// final storefront, and compute the feed's purity indicators from what
// the crawl actually returned.
//
// The simulated web is served by internal/webhost on a loopback
// listener; name resolution happens in the crawler's dialer, so dead
// and unregistered domains fail exactly like NXDOMAIN.
package main

import (
	"fmt"
	"os"
	"sync"

	"tasterschoice/internal/domain"
	"tasterschoice/internal/ecosystem"
	"tasterschoice/internal/feeds"
	"tasterschoice/internal/mailflow"
	"tasterschoice/internal/report"
	"tasterschoice/internal/simulate"
	"tasterschoice/internal/webcrawl"
	"tasterschoice/internal/webhost"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "httpcrawl: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scen := simulate.Small(2024)
	world, err := ecosystem.Generate(scen.Ecosystem)
	if err != nil {
		return err
	}
	res, err := mailflow.New(world, scen.Collection).Run()
	if err != nil {
		return err
	}

	srv := webhost.NewServer(world)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("simulated web serving %d domains on %s\n", len(world.Campaigns), addr)

	rows := make([][]string, 0, 3)
	for _, feedName := range []string{"mx1", "Ac1", "Hyb"} {
		feed := res.Feed(feedName)
		// Collect each domain's sample URL (or its bare root).
		type job struct {
			d   domain.Name
			url string
		}
		var jobs []job
		feed.Each(func(d domain.Name, s feeds.DomainStat) {
			u := s.SampleURL
			if u == "" {
				u = "http://" + string(d) + "/"
			}
			jobs = append(jobs, job{d, u})
		})

		// A pool of crawler workers, each with its own HTTP client.
		const workers = 8
		results := make([]webcrawl.Result, len(jobs))
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				crawler := webhost.NewCrawler(world, srv, addr.String())
				for i := range next {
					results[i] = crawler.Visit(jobs[i].url)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()

		var ok200, tagged int
		for _, r := range results {
			if r.OK {
				ok200++
			}
			if r.Tagged {
				tagged++
			}
		}
		n := len(jobs)
		rows = append(rows, []string{
			feedName,
			fmt.Sprintf("%d", n),
			report.Percent(float64(ok200) / float64(n)),
			report.Percent(float64(tagged) / float64(n)),
		})
	}

	fmt.Printf("\ncrawled over HTTP (%d requests served):\n\n", srv.Requests())
	fmt.Println(report.Table([]string{"Feed", "URLs", "HTTP 200", "Tagged"}, rows))
	fmt.Println("Compare with Table 2 of the full report: the same purity numbers,")
	fmt.Println("this time measured off the wire instead of simulated.")
	return nil
}
