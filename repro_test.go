package tasterschoice

// repro_test is the repository's single gate: one reduced-scale run
// through the entire pipeline, asserting the paper's headline findings
// and that every public deliverable (report, CSVs, advisor, selection)
// actually produces output. The per-mechanism detail lives in each
// package's tests; this is the "does the repo reproduce the paper"
// check a release would be cut against.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasterschoice/internal/analysis"
	"tasterschoice/internal/core"
	"tasterschoice/internal/simulate"
)

func TestReproductionGate(t *testing.T) {
	ds, err := simulate.Small(2010).Run()
	if err != nil {
		t.Fatal(err)
	}
	study := core.NewStudy(ds)

	t.Run("headline: smallest feed, biggest coverage", func(t *testing.T) {
		var huSamples, mx2Samples int64
		for _, r := range study.Table1() {
			switch r.Name {
			case "Hu":
				huSamples = r.Samples
			case "mx2":
				mx2Samples = r.Samples
			}
		}
		if huSamples >= mx2Samples {
			t.Errorf("Hu samples %d not below mx2 %d", huSamples, mx2Samples)
		}
		tagged := analysis.Coverage(ds, analysis.ClassTagged)
		best := ""
		bestN := -1
		for _, r := range tagged {
			if r.Total > bestN {
				best, bestN = r.Name, r.Total
			}
		}
		if best != "Hu" {
			t.Errorf("best tagged coverage = %s, want Hu", best)
		}
	})

	t.Run("headline: poisoning collapses Bot and mx2", func(t *testing.T) {
		for _, r := range study.Table2() {
			switch r.Name {
			case "Bot":
				if r.DNS > 0.2 {
					t.Errorf("Bot DNS %.2f", r.DNS)
				}
			case "mx2":
				if r.DNS > 0.5 {
					t.Errorf("mx2 DNS %.2f", r.DNS)
				}
			}
		}
	})

	t.Run("headline: early warning order", func(t *testing.T) {
		rows := analysis.FirstAppearance(ds,
			[]string{"Hu", "dbl", "uribl", "mx1", "mx2", "Ac1"})
		med := map[string]float64{}
		for _, r := range rows {
			if r.Summary.N > 0 {
				med[r.Name] = r.Summary.Median
			}
		}
		if med["Hu"] >= med["mx1"] || med["dbl"] >= med["mx1"] {
			t.Errorf("onset medians: Hu %.1fh dbl %.1fh mx1 %.1fh",
				med["Hu"], med["dbl"], med["mx1"])
		}
	})

	t.Run("full report renders", func(t *testing.T) {
		var buf bytes.Buffer
		if err := study.WriteReport(&buf); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"Table 1", "Figure 12", "Greedy feed acquisition"} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("report missing %q", want)
			}
		}
	})

	t.Run("csv outputs", func(t *testing.T) {
		dir := t.TempDir()
		if err := study.WriteCSVDir(dir); err != nil {
			t.Fatal(err)
		}
		matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
		if err != nil || len(matches) < 15 {
			t.Fatalf("csv files: %d err=%v", len(matches), err)
		}
		for _, m := range matches {
			if st, err := os.Stat(m); err != nil || st.Size() == 0 {
				t.Errorf("%s empty or unreadable", m)
			}
		}
	})

	t.Run("advisor answers every question", func(t *testing.T) {
		for _, q := range []core.Question{
			core.QCoverage, core.QPurity, core.QOnset,
			core.QCampaignEnd, core.QProportionality,
		} {
			if len(study.Recommend(q)) == 0 {
				t.Errorf("no ranking for %s", q)
			}
		}
	})
}
